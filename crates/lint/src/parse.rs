//! Item-level structure over the token stream: `impl` blocks, functions
//! (with separate signature and body ranges), and `match`-arm
//! segmentation. Enough shape for the rules to pair `encode`/`decode`
//! functions and attribute codec operations to enum variants — still
//! far short of a real parser, by design.

use crate::lexer::{Tok, Token};

/// A function item found in the token stream.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Name of the `impl` type this fn lives in (empty for free fns).
    pub impl_type: String,
    /// Token range of the signature: from after the name to the body `{`.
    pub sig: (usize, usize),
    /// Token range of the body, *inside* the braces.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Find the index of the token matching the `Open` at `open` (which must
/// be an `Open`), i.e. its balanced closing delimiter.
pub fn matching_close(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Extract every function in the stream, annotated with its enclosing
/// `impl` type (the `T` of `impl T` / `impl Trait for T`).
pub fn find_fns(toks: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    walk_items(toks, 0, toks.len(), "", &mut out);
    out
}

fn walk_items(toks: &[Token], start: usize, end: usize, impl_type: &str, out: &mut Vec<FnItem>) {
    let mut i = start;
    while i < end {
        match &toks[i].tok {
            Tok::Ident(s) if s == "impl" => {
                if let Some((ty, body_open)) = impl_header(toks, i, end) {
                    let close = matching_close(toks, body_open);
                    walk_items(toks, body_open + 1, close, &ty, out);
                    i = close + 1;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(s) if s == "fn" => {
                let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) else {
                    i += 1;
                    continue;
                };
                // The body is the first `{` at paren/bracket depth 0
                // after the name (skipping the generic/param/return
                // portion of the signature).
                let mut j = i + 2;
                let mut depth = 0i32;
                let mut body_open = None;
                while j < end {
                    match toks[j].tok {
                        Tok::Open('{') if depth == 0 => {
                            body_open = Some(j);
                            break;
                        }
                        Tok::Open(_) => depth += 1,
                        Tok::Close(_) => depth -= 1,
                        // Trait method without body.
                        Tok::Punct(';') if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let Some(open) = body_open else {
                    i = j + 1;
                    continue;
                };
                let close = matching_close(toks, open);
                out.push(FnItem {
                    name: name.clone(),
                    impl_type: impl_type.to_string(),
                    sig: (i + 2, open),
                    body: (open + 1, close),
                    line: toks[i].line,
                });
                i = close + 1;
            }
            _ => i += 1,
        }
    }
}

/// Parse an `impl` header starting at `impl_idx`; returns the
/// implemented type name and the index of the block's `{`.
fn impl_header(toks: &[Token], impl_idx: usize, end: usize) -> Option<(String, usize)> {
    let mut i = impl_idx + 1;
    // Skip generic parameters.
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        let mut depth = 0i32;
        while i < end {
            match toks[i].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Collect idents up to `{`; the type is the ident right after `for`
    // if present, else the first ident.
    let mut ty = String::new();
    let mut after_for = false;
    while i < end {
        match &toks[i].tok {
            Tok::Open('{') => {
                return if ty.is_empty() { None } else { Some((ty, i)) };
            }
            Tok::Ident(s) if s == "for" => {
                after_for = true;
                ty.clear();
            }
            Tok::Ident(s) if s == "where" => {
                // Type name is settled by now.
                while i < end && !matches!(toks[i].tok, Tok::Open('{')) {
                    i += 1;
                }
                continue;
            }
            Tok::Ident(s) if ty.is_empty() || after_for => {
                ty = s.clone();
                after_for = false;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// One arm of a `match`: its pattern and body token ranges.
#[derive(Debug)]
pub struct Arm {
    /// Tokens of the pattern (before `=>`).
    pub pat: (usize, usize),
    /// Tokens of the arm body.
    pub body: (usize, usize),
}

/// A `match` expression: the scrutinee range and its arms.
#[derive(Debug)]
pub struct MatchExpr {
    /// Tokens between `match` and the block `{`.
    pub scrutinee: (usize, usize),
    /// The arms, in order.
    pub arms: Vec<Arm>,
    /// Full block range including braces.
    pub block: (usize, usize),
}

/// Find the *outermost* `match` expressions inside `range` (nested
/// matches stay embedded in their arm bodies).
pub fn find_matches(toks: &[Token], range: (usize, usize)) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    let mut i = range.0;
    while i < range.1 {
        match &toks[i].tok {
            Tok::Ident(s) if s == "match" => {
                // Scrutinee: up to the first `{` at delimiter depth 0.
                let mut j = i + 1;
                let mut depth = 0i32;
                while j < range.1 {
                    match toks[j].tok {
                        Tok::Open('{') if depth == 0 => break,
                        Tok::Open(_) => depth += 1,
                        Tok::Close(_) => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if j >= range.1 {
                    break;
                }
                let block_open = j;
                let block_close = matching_close(toks, block_open);
                let arms = parse_arms(toks, block_open + 1, block_close);
                out.push(MatchExpr {
                    scrutinee: (i + 1, block_open),
                    arms,
                    block: (block_open, block_close),
                });
                i = block_close + 1;
            }
            // Skip nested blocks wholesale? No — outermost matches can
            // live inside `let … = match …` or plain statements at any
            // brace depth; we only skip *into* found matches above.
            _ => i += 1,
        }
    }
    out
}

fn parse_arms(toks: &[Token], start: usize, end: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = start;
    while i < end {
        // Pattern: up to `=>` at depth 0.
        let pat_start = i;
        let mut depth = 0i32;
        let mut arrow = None;
        while i < end {
            match toks[i].tok {
                Tok::FatArrow if depth == 0 => {
                    arrow = Some(i);
                    break;
                }
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => depth -= 1,
                _ => {}
            }
            i += 1;
        }
        let Some(arrow) = arrow else { break };
        // Body: a braced block, or an expression up to `,` at depth 0.
        let body_start = arrow + 1;
        let body_end;
        if matches!(toks.get(body_start).map(|t| &t.tok), Some(Tok::Open('{'))) {
            let close = matching_close(toks, body_start);
            body_end = close + 1;
            i = close + 1;
            // Optional trailing comma.
            if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(','))) {
                i += 1;
            }
        } else {
            let mut depth = 0i32;
            let mut j = body_start;
            while j < end {
                match toks[j].tok {
                    Tok::Punct(',') if depth == 0 => break,
                    Tok::Open(_) => depth += 1,
                    Tok::Close(_) => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            body_end = j;
            i = j + 1;
        }
        arms.push(Arm { pat: (pat_start, arrow), body: (body_start, body_end) });
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fns_and_impls() {
        let src = r#"
            fn free() { 1 }
            impl Foo {
                pub fn encode(&self) -> Bytes { x }
                fn helper(a: u8) { y }
            }
            impl<T: Clone> Display for Bar<T> {
                fn fmt(&self) { z }
            }
        "#;
        let toks = lex(src);
        let fns = find_fns(&toks);
        let names: Vec<_> = fns.iter().map(|f| (f.impl_type.as_str(), f.name.as_str())).collect();
        assert_eq!(names, [("", "free"), ("Foo", "encode"), ("Foo", "helper"), ("Bar", "fmt")]);
    }

    #[test]
    fn match_arms_with_blocks_and_exprs() {
        let src = r#"
            fn f(x: E) -> u8 {
                let v = match x {
                    E::A { a } => { w.u8(a); 1 }
                    E::B(b) => b,
                    _ => return 0,
                };
                v
            }
        "#;
        let toks = lex(src);
        let fns = find_fns(&toks);
        let ms = find_matches(&toks, fns[0].body);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].arms.len(), 3);
    }

    #[test]
    fn nested_match_stays_inside_outer_arm() {
        let src = r#"
            fn f(x: E) {
                match x {
                    E::A(k) => match k {
                        K::P => 1,
                        K::Q => 2,
                    },
                    E::B => 3,
                }
            }
        "#;
        let toks = lex(src);
        let fns = find_fns(&toks);
        let ms = find_matches(&toks, fns[0].body);
        assert_eq!(ms.len(), 1, "outer match only");
        assert_eq!(ms[0].arms.len(), 2);
    }
}
