//! `rina-lint`: repo-specific determinism and protocol-invariant static
//! analysis for the netipc workspace.
//!
//! Five rule families, all running on a hand-rolled token stream (no
//! external dependencies, in the spirit of the JSON reader in
//! `crates/bench/src/compare.rs`):
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1 | no wall clocks, OS threads, or OS randomness in shipping code |
//! | D2 | no hash-order iteration feeding wire/report/digest output |
//! | W1 | encode/decode symmetry per enum variant in paired codec fns |
//! | R1 | no panic sites (`unwrap`/`expect`/indexing) in protocol hot paths |
//! | C1 | every `DifConfig`/`ConnParams` field documented in DESIGN.md |
//!
//! Accepted findings are carried in `lint-allow.toml` with a mandatory
//! justification string; stale entries (matching no live finding) fail
//! the `--deny` gate, so the baseline can only shrink truthfully.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::path::Path;

/// One lint finding with a stable baseline key.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (`"D1"` … `"C1"`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line of the (first) offending token.
    pub line: u32,
    /// Stable key for `lint-allow.toml` (no line numbers, survives
    /// unrelated edits).
    pub key: String,
    /// Human-readable diagnosis.
    pub msg: String,
}

/// Files whose panic-freedom R1 enforces: the per-PDU protocol paths.
pub const HOT_PATHS: &[&str] = &[
    "crates/core/src/ipcp.rs",
    "crates/core/src/rmt.rs",
    "crates/efcp/src/conn.rs",
    "crates/routing/src/engine.rs",
    "crates/sim/src/engine.rs",
];

/// Collect the workspace's lintable sources: `crates/*/src/**/*.rs`
/// excluding the vendored `compat` shims, plus the root package's
/// `src/`. Returns `(relative path, contents)` sorted by path.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut roots: Vec<(String, std::path::PathBuf)> = Vec::new();
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("cannot read {}: {e}", crates.display()))?;
    for ent in entries {
        let ent = ent.map_err(|e| e.to_string())?;
        let name = ent.file_name().to_string_lossy().to_string();
        if name == "compat" || !ent.path().is_dir() {
            continue;
        }
        let src = ent.path().join("src");
        if src.is_dir() {
            roots.push((format!("crates/{name}/src"), src));
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        roots.push(("src".to_string(), root_src));
    }
    let mut out = Vec::new();
    for (rel, dir) in roots {
        walk_rs(&dir, &rel, &mut out)?;
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk_rs(dir: &Path, rel: &str, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut names: Vec<_> = entries
        .filter_map(|e| e.ok())
        .map(|e| (e.file_name().to_string_lossy().to_string(), e.path()))
        .collect();
    names.sort();
    for (name, path) in names {
        if path.is_dir() {
            walk_rs(&path, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.push((format!("{rel}/{name}"), text));
        }
    }
    Ok(())
}

/// Run every rule over the workspace at `root`. Findings are sorted by
/// `(rule, file, line)`.
pub fn run_all(root: &Path) -> Result<Vec<Finding>, String> {
    let sources = collect_sources(root)?;
    let lexed: Vec<(String, Vec<lexer::Token>)> =
        sources.iter().map(|(p, s)| (p.clone(), lexer::strip_test_items(&lexer::lex(s)))).collect();
    let mut out = Vec::new();
    for (path, toks) in &lexed {
        out.extend(rules::determinism::check_d1(path, toks));
        out.extend(rules::determinism::check_d2(path, toks));
        out.extend(rules::wire::check_w1(path, toks));
        if HOT_PATHS.contains(&path.as_str()) {
            out.extend(rules::panics::check_r1(path, toks));
        }
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    out.extend(rules::config::check_c1(&design, &lexed));
    out.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    Ok(out)
}
