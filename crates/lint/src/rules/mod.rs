//! The rule families. Each module exposes `check_*` functions that take
//! pre-lexed (and test-stripped) token streams and return
//! [`Finding`](crate::Finding)s with stable baseline keys.

pub mod config;
pub mod determinism;
pub mod panics;
pub mod wire;
