//! R1 — no panic paths in protocol hot code. `unwrap()`, `expect(..)`,
//! `panic!`/`unreachable!`/`todo!`, and direct indexing are all ways a
//! malformed PDU or a state-machine race can take down a whole simulated
//! node instead of surfacing an error.
//!
//! Findings aggregate per `(file, fn, kind)` — the count is reported but
//! not part of the baseline key, so refactors inside an already-baselined
//! function don't churn the baseline while *new* functions still fail.

use crate::lexer::{Tok, Token};
use crate::parse::{find_fns, matching_close};
use crate::Finding;

/// Identifiers that, immediately before `[`, mean the bracket is not an
/// index expression.
const NON_INDEX_PREV: &[&str] = &[
    "let", "in", "return", "if", "else", "match", "mut", "ref", "move", "as", "break", "where",
    "use", "pub", "crate", "dyn", "impl", "for",
];

/// Check one hot-path file.
pub fn check_r1(file: &str, toks: &[Token]) -> Vec<Finding> {
    let mut agg: Vec<(String, String, u32, u32)> = Vec::new(); // (fn, kind, first line, count)
    for f in find_fns(toks) {
        let mut hit = |kind: &str, line: u32| match agg
            .iter_mut()
            .find(|(fa, k, _, _)| *fa == f.name && k == kind)
        {
            Some((_, _, _, n)) => *n += 1,
            None => agg.push((f.name.clone(), kind.to_string(), line, 1)),
        };
        for i in f.body.0..f.body.1 {
            match &toks[i].tok {
                Tok::Ident(m)
                    if (m == "unwrap" || m == "expect")
                        && i > 0
                        && toks[i - 1].is_punct('.')
                        && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Open('('))) =>
                {
                    hit(m, toks[i].line);
                }
                Tok::Ident(m)
                    if (m == "panic" || m == "unreachable" || m == "todo")
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
                {
                    hit(m, toks[i].line);
                }
                Tok::Open('[') if i > 0 && is_index_site(toks, i) => {
                    hit("index", toks[i].line);
                }
                _ => {}
            }
        }
    }
    agg.into_iter()
        .map(|(fname, kind, line, n)| Finding {
            rule: "R1",
            file: file.to_string(),
            line,
            key: format!("R1|{file}|{fname}|{kind}"),
            msg: format!(
                "{n} `{kind}` panic site{} in hot-path fn `{fname}`; return an error or \
                 prove the invariant and baseline it",
                if n == 1 { "" } else { "s" }
            ),
        })
        .collect()
}

/// `expr[..]`-style index expression: `[` directly after an identifier or
/// a closing delimiter, excluding full-range slices `[..]` and non-index
/// contexts (macros, attributes, types, patterns after keywords).
fn is_index_site(toks: &[Token], i: usize) -> bool {
    let indexable = match &toks[i - 1].tok {
        Tok::Ident(s) => !NON_INDEX_PREV.contains(&s.as_str()),
        Tok::Close(')') | Tok::Close(']') => true,
        _ => false,
    };
    if !indexable {
        return false;
    }
    // `buf[..]` borrows the whole slice — infallible.
    let close = matching_close(toks, i);
    !(close == i + 3 && toks[i + 1].is_punct('.') && toks[i + 2].is_punct('.'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn unwrap_expect_and_macros_fire_per_fn() {
        let src = r#"
            fn a(x: Option<u8>) -> u8 { x.unwrap() }
            fn b(x: Option<u8>) -> u8 { if x.is_none() { panic!("no") } x.expect("b") }
        "#;
        let keys: Vec<String> = check_r1("h.rs", &lex(src)).into_iter().map(|f| f.key).collect();
        assert_eq!(keys, ["R1|h.rs|a|unwrap", "R1|h.rs|b|panic", "R1|h.rs|b|expect"]);
    }

    #[test]
    fn indexing_fires_but_ranges_macros_types_do_not() {
        let src = r#"
            fn a(v: &[u8], i: usize) -> u8 { v[i] }
            fn b(v: &[u8]) -> &[u8] { &v[..] }
            fn c() -> Vec<u8> { vec![1, 2] }
            fn d(m: [u8; 4]) -> u8 { let [x, _, _, _] = m; x }
        "#;
        let fs = check_r1("h.rs", &lex(src));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].key, "R1|h.rs|a|index");
    }

    #[test]
    fn counts_aggregate_per_fn_and_kind() {
        let src = "fn a(v: &[u8]) -> u8 { v[0] + v[1] }";
        let fs = check_r1("h.rs", &lex(src));
        assert_eq!(fs.len(), 1);
        assert!(fs[0].msg.starts_with("2 "), "{}", fs[0].msg);
    }

    #[test]
    fn partial_ranges_still_fire() {
        let src = "fn a(v: &[u8]) -> &[u8] { &v[1..] }";
        assert_eq!(check_r1("h.rs", &lex(src)).len(), 1);
    }
}
