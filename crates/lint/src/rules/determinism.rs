//! D1 — ambient nondeterminism sources (wall clocks, OS threads, OS
//! randomness) and D2 — hash-order iteration that can leak into output.
//!
//! Every performance and protocol claim in this repo rests on runs being
//! byte-identical given a seed; these two rules defend that statically.

use crate::lexer::{Tok, Token};
use crate::Finding;

/// Identifiers whose mere presence in shipping code is a D1 finding.
const D1_SYMBOLS: &[&str] = &["Instant", "SystemTime", "thread_rng", "RandomState", "from_entropy"];

/// D1: flag wall-clock, OS-thread, and OS-randomness symbols. One finding
/// per `(file, symbol)` at the first occurrence; legitimate uses (the
/// sweep worker pool, harness timing) carry a `lint-allow.toml` entry.
pub fn check_d1(file: &str, toks: &[Token]) -> Vec<Finding> {
    let mut seen: Vec<(String, u32)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let sym = if D1_SYMBOLS.contains(&id) {
            Some(id.to_string())
        } else if id == "std"
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Colon2))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("thread"))
        {
            Some("std::thread".to_string())
        } else {
            None
        };
        if let Some(sym) = sym {
            if !seen.iter().any(|(s, _)| *s == sym) {
                seen.push((sym, t.line));
            }
        }
    }
    seen.into_iter()
        .map(|(sym, line)| Finding {
            rule: "D1",
            file: file.to_string(),
            line,
            key: format!("D1|{file}|{sym}"),
            msg: format!(
                "ambient nondeterminism source `{sym}`; simulation code must use \
                 the virtual clock and seeded RNGs"
            ),
        })
        .collect()
}

/// Methods that enumerate a hash container in hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers that mark an iteration as order-insensitive or explicitly
/// re-ordered within its statement window (`sort*`, commutative folds,
/// ordered collections as the sink).
fn is_suppressor(id: &str) -> bool {
    id.starts_with("sort")
        || matches!(
            id,
            "BTreeMap"
                | "BTreeSet"
                | "BinaryHeap"
                | "count"
                | "sum"
                | "min"
                | "max"
                | "min_by_key"
                | "max_by_key"
                | "all"
                | "any"
                | "fold"
        )
}

/// D2: flag iteration over bindings declared as `HashMap`/`HashSet`
/// unless the surrounding statement window shows the order being fixed
/// (sorted) or erased (commutative aggregation, ordered sink). Bindings
/// behind `type` aliases (the routing crate's seeded `IntMap`) are out of
/// scope by design: their hasher is deterministic across runs.
pub fn check_d2(file: &str, toks: &[Token]) -> Vec<Finding> {
    let bindings = hash_bindings(toks);
    if bindings.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<Finding> = Vec::new();
    let mut hit = |name: &str, idx: usize, line: u32| {
        if suppressed(toks, idx) {
            return;
        }
        let key = format!("D2|{file}|{name}");
        if out.iter().any(|f| f.key == key) {
            return;
        }
        out.push(Finding {
            rule: "D2",
            file: file.to_string(),
            line,
            key,
            msg: format!(
                "iteration over hash-ordered `{name}`; sort before iterating, switch \
                 to BTreeMap/BTreeSet, or baseline with a justification"
            ),
        });
    };
    for (i, t) in toks.iter().enumerate() {
        // `binding.iter()` style (also matches `self.binding.keys()`).
        if let Some(name) = t.ident() {
            if bindings.iter().any(|b| b == name)
                && i + 2 < toks.len()
                && toks[i + 1].is_punct('.')
                && toks[i + 2].ident().is_some_and(|m| ITER_METHODS.contains(&m))
                && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Open('(')))
            {
                hit(name, i, t.line);
            }
        }
        // `for pat in <expr mentioning binding> {` style.
        if t.is_ident("for") {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut in_kw = None;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Open('{') if depth == 0 => break,
                    Tok::Open(_) => depth += 1,
                    Tok::Close(_) => depth -= 1,
                    Tok::Ident(ref s) if s == "in" && depth == 0 && in_kw.is_none() => {
                        in_kw = Some(j)
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(k) = in_kw {
                for e in k + 1..j {
                    if let Some(name) = toks[e].ident() {
                        if bindings.iter().any(|b| b == name) {
                            hit(name, i, toks[i].line);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Names declared (or initialized) as `HashMap`/`HashSet` anywhere in the
/// file: `name: HashMap<..>` fields/params and `name = HashMap::new()`
/// style initializations. `type` aliases are skipped.
fn hash_bindings(toks: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over path segments and type sigils to the `:` of a
        // declaration or the `=` of an initialization.
        let mut j = k;
        while j > 0 {
            j -= 1;
            match &toks[j].tok {
                Tok::Ident(_) | Tok::Colon2 | Tok::Punct('&') | Tok::Punct('<') => continue,
                _ => break,
            }
        }
        let name = match toks[j].tok {
            Tok::Punct(':') | Tok::Punct('=') => {
                match toks.get(j.wrapping_sub(1)).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => {
                        // `type Alias = HashMap<..>` is not a binding.
                        if j >= 2 && toks[j - 2].is_ident("type") {
                            None
                        } else {
                            Some(n.clone())
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(n) = name {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    names
}

/// True if the statement window starting at the hit (through the next two
/// `;`, or a bounded lookahead) mentions a suppressor.
fn suppressed(toks: &[Token], idx: usize) -> bool {
    let mut semis = 0;
    for t in toks.iter().skip(idx).take(200) {
        if let Some(id) = t.ident() {
            if is_suppressor(id) {
                return true;
            }
        }
        if t.is_punct(';') {
            semis += 1;
            if semis == 2 {
                break;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn d1_flags_symbols_once_per_file() {
        let src =
            "use std::time::Instant; fn f() { let t = Instant::now(); std::thread::sleep(d); }";
        let fs = check_d1("x.rs", &lex(src));
        let keys: Vec<_> = fs.iter().map(|f| f.key.as_str()).collect();
        assert_eq!(keys, ["D1|x.rs|Instant", "D1|x.rs|std::thread"]);
    }

    #[test]
    fn d1_ignores_comments_and_strings() {
        let src = "// Instant\nfn f() { let s = \"SystemTime\"; }";
        assert!(check_d1("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn d2_flags_unsorted_iteration() {
        let src =
            "struct S { m: HashMap<u32, u8> }\nfn f(s: &S) { for (k, v) in &s.m { emit(k, v); } }";
        let fs = check_d2("x.rs", &lex(src));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].key, "D2|x.rs|m");
    }

    #[test]
    fn d2_method_iteration_flagged() {
        let src = "fn f() { let m = HashMap::new(); out.extend(m.keys()); }";
        assert_eq!(check_d2("x.rs", &lex(src)).len(), 1);
    }

    #[test]
    fn d2_sorted_window_suppresses() {
        let src = "fn f(m: &HashMap<u32, u8>) { let mut v: Vec<_> = m.iter().collect(); v.sort_unstable(); }";
        assert!(check_d2("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn d2_commutative_sink_suppresses() {
        let src = "fn f(m: &HashMap<u32, u8>) -> u64 { m.values().map(|v| *v as u64).sum() }";
        assert!(check_d2("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn d2_type_alias_and_btreemap_exempt() {
        let src = "type IntMap<K, V> = std::collections::HashMap<K, V, H>;\n\
                   fn f(m: &BTreeMap<u32, u8>) { for x in m.iter() { emit(x); } }";
        assert!(check_d2("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn d2_retain_is_not_iteration() {
        let src = "fn f(m: &mut HashMap<u32, u8>) { m.retain(|_, v| *v > 0); }";
        assert!(check_d2("x.rs", &lex(src)).is_empty());
    }
}
