//! C1 — policy-surface documentation. Every field of the two
//! policy-parameter structs (`DifConfig`, `ConnParams`) must be named in
//! DESIGN.md's config tables: the paper's whole point is that one
//! mechanism is parameterized by visible policy, so an undocumented knob
//! is a spec violation, not just a docs gap.

use crate::lexer::{Tok, Token};
use crate::parse::matching_close;
use crate::Finding;

/// The structs whose fields form the documented policy surface.
pub const CONFIG_STRUCTS: &[&str] = &["DifConfig", "ConnParams"];

/// Check every `CONFIG_STRUCTS` definition found in `files` against the
/// DESIGN.md text.
pub fn check_c1(design_md: &str, files: &[(String, Vec<Token>)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (path, toks) in files {
        for (sname, field, line) in struct_fields(toks) {
            if !word_present(design_md, &field) {
                out.push(Finding {
                    rule: "C1",
                    file: path.clone(),
                    line,
                    key: format!("C1|{sname}|{field}"),
                    msg: format!(
                        "policy field `{sname}.{field}` is not referenced in DESIGN.md's \
                         config tables"
                    ),
                });
            }
        }
    }
    out
}

/// `(struct, field, line)` for each field of a config struct definition.
fn struct_fields(toks: &[Token]) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_def = toks[i].is_ident("struct")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.ident().is_some_and(|s| CONFIG_STRUCTS.contains(&s)));
        if !is_def {
            i += 1;
            continue;
        }
        let sname = toks[i + 1].ident().unwrap_or_default().to_string();
        // Find the body `{` (skipping generics, which none of ours have).
        let mut j = i + 2;
        while j < toks.len() && !matches!(toks[j].tok, Tok::Open('{')) {
            if toks[j].is_punct(';') {
                break; // unit/tuple struct — no named fields
            }
            j += 1;
        }
        if j >= toks.len() || !matches!(toks[j].tok, Tok::Open('{')) {
            i += 2;
            continue;
        }
        let close = matching_close(toks, j);
        let mut depth = 0i32;
        for k in j + 1..close {
            match &toks[k].tok {
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => depth -= 1,
                Tok::Ident(name) if depth == 0 => {
                    // A field is `name :` at top level, preceded by `{`,
                    // `,`, `pub`, or `pub(..)`.
                    let starts_field = toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        && !matches!(toks[k - 1].tok, Tok::Colon2)
                        && (matches!(toks[k - 1].tok, Tok::Open('{') | Tok::Punct(','))
                            || toks[k - 1].is_ident("pub")
                            || matches!(toks[k - 1].tok, Tok::Close(')')));
                    if starts_field {
                        out.push((sname.clone(), name.clone(), toks[k].line));
                    }
                }
                _ => {}
            }
        }
        i = close + 1;
    }
    out
}

/// Word-boundary presence: `name` appears in `text` not embedded in a
/// larger identifier.
fn word_present(text: &str, name: &str) -> bool {
    let b = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let ok_before =
            start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
        let ok_after = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if ok_before && ok_after {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn files(src: &str) -> Vec<(String, Vec<Token>)> {
        vec![("cfg.rs".to_string(), lex(src))]
    }

    const SRC: &str = r#"
        pub struct DifConfig {
            pub name: DifName,
            pub hello_period: u64,
            pub cubes: Vec<QosCube>,
        }
        struct Unrelated { pub hidden_knob: u8 }
    "#;

    #[test]
    fn undocumented_field_fires() {
        let md = "| `name` | the DIF name |\n| `hello_period` | keepalive period |";
        let fs = check_c1(md, &files(SRC));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].key, "C1|DifConfig|cubes");
    }

    #[test]
    fn fully_documented_struct_is_clean_and_unrelated_structs_ignored() {
        let md = "`name`, `hello_period`, and `cubes` are the policy surface.";
        assert!(check_c1(md, &files(SRC)).is_empty());
    }

    #[test]
    fn word_boundaries_respected() {
        // `hello_period_ms` must not satisfy `hello_period`.
        let md = "`name` `hello_period_ms` `cubes`";
        let fs = check_c1(md, &files(SRC));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].key, "C1|DifConfig|hello_period");
    }
}
