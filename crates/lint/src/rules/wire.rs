//! W1 — wire-codec symmetry. For every paired `encode`/`decode` (also
//! `encode_into`/`decode_from`, `into_cdap`/`from_cdap`) on one impl, the
//! multiset of codec operations written per enum variant must equal the
//! multiset read back. This catches the classic drift bug — a field added
//! to `encode` without its `decode` read — before any proptest runs.
//!
//! The comparison is structural, not positional:
//!
//! * Ops are bucketed by the **outermost** `match` arm they occur in
//!   (nested matches flatten into their parent arm), keyed by the enum
//!   variant the arm encodes/constructs; ops outside any match form the
//!   `(preamble)` bucket.
//! * `raw` writes, `rest` reads, and helper calls handed the bare
//!   writer/reader variable all count as one `tail` op.
//! * `.encode(..)`/`.encode_into(..)` writes pair with
//!   `::decode(..)`/`::decode_from(..)` reads as one `nested` op.
//! * Type/version *tags* cancel out: a `u8` write of an ALL_CAPS constant
//!   on the encode side, and on the decode side a `u8` read consumed by a
//!   `match` scrutinee or bound to a name that is only compared/matched.
//! * Ops inside a loop are tracked as `op@loop` so a looped field can't
//!   pair with a straight-line one.
//!
//! Besides the pairwise comparison, W1 polices the *read-side surface*:
//! a fn with a recognized read name (`decode`, `decode_from`,
//! `from_cdap`) and no write-side counterpart on the same impl is
//! flagged — a one-sided walker silently drifts from the encoder. The
//! one sanctioned shape of unpaired reader is the **read-only peek**: a
//! fn named `peek` on a `*View` type (e.g. `PduView::peek`), which by
//! contract reads a strict subset of the frame and is pinned to the
//! paired `decode` by proptest instead of by this rule. A `peek` on any
//! other type, or a `*View::peek` that grows `Writer` ops, is flagged.

use crate::lexer::{Tok, Token};
use crate::parse::{find_fns, find_matches, matching_close, FnItem};
use crate::Finding;

/// Fixed-shape codec primitives shared by `Writer` and `Reader`.
const PRIMS: &[&str] = &["u8", "u16", "u32", "u64", "varint", "bytes", "string", "boolean"];

/// Method names that delegate to a nested codec, either side.
const NESTED: &[&str] = &["encode", "encode_into", "decode", "decode_from"];

/// The recognized encode/decode fn-name pairs.
const PAIRS: &[(&str, &str)] =
    &[("encode", "decode"), ("encode_into", "decode_from"), ("into_cdap", "from_cdap")];

const KEYWORDS: &[&str] =
    &["if", "else", "while", "for", "in", "match", "return", "loop", "let", "break", "continue"];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    Write,
    Read,
}

/// One codec operation: its canonical signature atom and source line.
struct Op {
    sig: String,
    idx: usize,
    line: u32,
}

/// Check one file for codec-symmetry violations.
pub fn check_w1(file: &str, toks: &[Token]) -> Vec<Finding> {
    let fns = find_fns(toks);
    let mut out = Vec::new();
    for (ename, dname) in PAIRS {
        for ef in fns.iter().filter(|f| f.name == *ename && !f.impl_type.is_empty()) {
            let Some(df) = fns.iter().find(|f| f.name == *dname && f.impl_type == ef.impl_type)
            else {
                continue;
            };
            compare_pair(file, toks, ef, df, &mut out);
        }
        // Read-side surface: a recognized read name with no write-side
        // counterpart on the same impl is a one-sided walker.
        for df in fns.iter().filter(|f| f.name == *dname && !f.impl_type.is_empty()) {
            if fns.iter().any(|f| f.name == *ename && f.impl_type == df.impl_type) {
                continue;
            }
            out.push(Finding {
                rule: "W1",
                file: file.to_string(),
                line: df.line,
                key: format!("W1|{file}|{}::{}|unpaired-read", df.impl_type, df.name),
                msg: format!(
                    "{}::{} reads the wire format with no paired {} on the same impl — \
                     one-sided walkers drift silently from the encoder",
                    df.impl_type, df.name, ename
                ),
            });
        }
    }
    check_peeks(file, toks, &fns, &mut out);
    out
}

/// The sanctioned unpaired reader: `peek` on a `*View` type is a
/// declared read-only walk (pinned to the paired `decode` by proptest),
/// so it needs no write-side counterpart — but it must *stay* read-only,
/// and the shape is reserved for `*View` types so the contract is
/// visible at the call site.
fn check_peeks(file: &str, toks: &[Token], fns: &[FnItem], out: &mut Vec<Finding>) {
    for f in fns.iter().filter(|f| f.name == "peek" && !f.impl_type.is_empty()) {
        if !f.impl_type.ends_with("View") {
            out.push(Finding {
                rule: "W1",
                file: file.to_string(),
                line: f.line,
                key: format!("W1|{file}|{}::peek|peek-on-non-view", f.impl_type),
                msg: format!(
                    "{}::peek walks the wire format on a type not named *View — either pair \
                     it with an encoder or move it to a read-only view type",
                    f.impl_type
                ),
            });
            continue;
        }
        if (f.body.0..f.body.1).any(|i| toks[i].is_ident("Writer")) {
            out.push(Finding {
                rule: "W1",
                file: file.to_string(),
                line: f.line,
                key: format!("W1|{file}|{}::peek|peek-writes", f.impl_type),
                msg: format!(
                    "{}::peek constructs a Writer — a peek is read-only by contract; a \
                     read/write walker needs the paired encode/decode treatment",
                    f.impl_type
                ),
            });
        }
    }
}

fn compare_pair(file: &str, toks: &[Token], ef: &FnItem, df: &FnItem, out: &mut Vec<Finding>) {
    let eb = buckets(toks, ef, Side::Write);
    let db = buckets(toks, df, Side::Read);
    let mut labels: Vec<&str> = eb.iter().chain(db.iter()).map(|(l, _)| l.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    for label in labels {
        let e = bucket_ops(&eb, label);
        let d = bucket_ops(&db, label);
        let esig = sig_of(e);
        let dsig = sig_of(d);
        if esig == dsig {
            continue;
        }
        let line = e
            .and_then(|v| v.first())
            .or(d.and_then(|v| v.first()))
            .map(|o| o.line)
            .unwrap_or(ef.line);
        let pair = format!("{}::{}/{}", ef.impl_type, ef.name, df.name);
        out.push(Finding {
            rule: "W1",
            file: file.to_string(),
            line,
            key: format!("W1|{file}|{pair}|{label}|{esig}/{dsig}"),
            msg: format!(
                "codec asymmetry in {pair}, variant {label}: encode writes [{esig}] but \
                 decode reads [{dsig}]"
            ),
        });
    }
}

fn bucket_ops<'a>(b: &'a [(String, Vec<Op>)], label: &str) -> Option<&'a Vec<Op>> {
    b.iter().find(|(l, _)| l == label).map(|(_, v)| v)
}

/// Canonical multiset signature: sorted op atoms joined with `+`, or `-`
/// for an absent/empty bucket.
fn sig_of(ops: Option<&Vec<Op>>) -> String {
    let mut atoms: Vec<&str> = match ops {
        Some(v) => v.iter().map(|o| o.sig.as_str()).collect(),
        None => Vec::new(),
    };
    if atoms.is_empty() {
        return "-".to_string();
    }
    atoms.sort_unstable();
    atoms.join("+")
}

/// Extract this side's ops and group them into `(variant bucket, ops)`.
fn buckets(toks: &[Token], f: &FnItem, side: Side) -> Vec<(String, Vec<Op>)> {
    let ops = extract_ops(toks, f, side);
    let ms = find_matches(toks, f.body);
    let mut out: Vec<(String, Vec<Op>)> = Vec::new();
    let mut push = |label: String, op: Op| match out.iter_mut().find(|(l, _)| *l == label) {
        Some((_, v)) => v.push(op),
        None => out.push((label, vec![op])),
    };
    'ops: for op in ops {
        for m in &ms {
            if op.idx >= m.block.0 && op.idx <= m.block.1 {
                for arm in &m.arms {
                    if op.idx >= arm.body.0 && op.idx < arm.body.1 {
                        let label =
                            arm_label(toks, arm.pat, arm.body).unwrap_or_else(|| "(arm)".into());
                        push(label, op);
                        continue 'ops;
                    }
                }
                // In the match header or an arm pattern: preamble.
                push("(preamble)".into(), op);
                continue 'ops;
            }
        }
        push("(preamble)".into(), op);
    }
    out
}

/// The enum variant an arm is about: the single `A::B` path in its
/// pattern if unambiguous, else the last uppercase-initial `A::B`
/// immediately followed by `{`/`(` in its body (the variant being
/// constructed on the decode side).
fn arm_label(toks: &[Token], pat: (usize, usize), body: (usize, usize)) -> Option<String> {
    let mut pat_paths: Vec<String> = Vec::new();
    let mut p = pat.0;
    while p < pat.1 {
        if toks[p].ident().is_some() && matches!(toks.get(p + 1).map(|t| &t.tok), Some(Tok::Colon2))
        {
            // Consume the whole path chain, keep the last segment.
            let mut last = p;
            while matches!(toks.get(last + 1).map(|t| &t.tok), Some(Tok::Colon2))
                && toks.get(last + 2).is_some_and(|t| t.ident().is_some())
            {
                last += 2;
            }
            if let Some(seg) = toks[last].ident() {
                if seg.starts_with(char::is_uppercase) && !pat_paths.iter().any(|s| s == seg) {
                    pat_paths.push(seg.to_string());
                }
            }
            p = last + 1;
        } else {
            p += 1;
        }
    }
    if pat_paths.len() == 1 {
        return pat_paths.pop();
    }
    let mut label = None;
    for i in body.0..body.1 {
        if i >= 2
            && toks[i - 1].tok == Tok::Colon2
            && toks[i - 2].ident().is_some()
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Open('{') | Tok::Open('(')))
        {
            if let Some(seg) = toks[i].ident() {
                if seg.starts_with(char::is_uppercase) {
                    label = Some(seg.to_string());
                }
            }
        }
    }
    label
}

fn extract_ops(toks: &[Token], f: &FnItem, side: Side) -> Vec<Op> {
    let io_vars = io_vars(toks, f);
    let loops = loop_ranges(toks, f.body);
    let scruts = scrutinee_ranges(toks, f.body);
    let in_any = |ranges: &[(usize, usize)], i: usize| ranges.iter().any(|&(a, b)| i >= a && i < b);
    let mut ops = Vec::new();
    for i in f.body.0..f.body.1 {
        let Some(m) = toks[i].ident() else { continue };
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Open('('))) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let prev_path = i > 0 && toks[i - 1].tok == Tok::Colon2;
        let atom = if prev_dot && PRIMS.contains(&m) {
            if side == Side::Write && m == "u8" && is_allcaps_tag_write(toks, i + 1) {
                continue; // type/version tag byte, cancelled by decode's selector read
            }
            if side == Side::Read && m == "u8" && is_tag_read(toks, f, &scruts, i) {
                continue; // selector read, cancelled by encode's tag writes
            }
            Some(m.to_string())
        } else if prev_dot
            && ((side == Side::Write && m == "raw") || (side == Side::Read && m == "rest"))
        {
            Some("tail".to_string())
        } else if (prev_dot || prev_path) && NESTED.contains(&m) {
            Some("nested".to_string())
        } else if !KEYWORDS.contains(&m) {
            let close = matching_close(toks, i + 1);
            if has_bare_io_var(toks, i + 1, close, &io_vars) {
                Some("tail".to_string())
            } else {
                None
            }
        } else {
            None
        };
        if let Some(mut sig) = atom {
            if in_any(&loops, i) {
                sig.push_str("@loop");
            }
            ops.push(Op { sig, idx: i, line: toks[i].line });
        }
    }
    ops
}

/// Writer/reader variable names in scope: codec-op receivers, params
/// typed `Writer`/`Reader`, and `Writer::`/`Reader::` ctor bindings.
fn io_vars(toks: &[Token], f: &FnItem) -> Vec<String> {
    let mut vars = Vec::new();
    let mut add = |v: &str| {
        if !vars.iter().any(|x| x == v) {
            vars.push(v.to_string());
        }
    };
    for i in f.body.0..f.body.1 {
        if let Some(v) = toks[i].ident() {
            let recv_of_op = toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(i + 2).is_some_and(|t| {
                    t.ident().is_some_and(|m| PRIMS.contains(&m) || m == "raw" || m == "rest")
                })
                && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Open('(')));
            if recv_of_op {
                add(v);
            }
            if (v == "Writer" || v == "Reader")
                && i >= 2
                && toks[i - 1].is_punct('=')
                && toks[i - 2].ident().is_some()
            {
                add(toks[i - 2].ident().unwrap_or_default());
            }
        }
    }
    for i in f.sig.0..f.sig.1 {
        if toks[i].is_ident("Writer") || toks[i].is_ident("Reader") {
            // Walk back over the type expression to the param's `:`.
            let mut j = i;
            while j > f.sig.0 {
                j -= 1;
                match &toks[j].tok {
                    Tok::Ident(_) | Tok::Colon2 | Tok::Punct('&') | Tok::Punct('<') => continue,
                    _ => break,
                }
            }
            if toks[j].is_punct(':') && j > f.sig.0 {
                if let Some(v) = toks[j - 1].ident() {
                    add(v);
                }
            }
        }
    }
    vars
}

/// Ranges (token indices of `{`..`}`) of `for`/`while`/`loop` bodies.
fn loop_ranges(toks: &[Token], body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in body.0..body.1 {
        if !(toks[i].is_ident("for") || toks[i].is_ident("while") || toks[i].is_ident("loop")) {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < body.1 {
            match toks[j].tok {
                Tok::Open('{') if depth == 0 => {
                    out.push((j, matching_close(toks, j)));
                    break;
                }
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => depth -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    out
}

/// Scrutinee token ranges of every `match` in the body, nested included.
fn scrutinee_ranges(toks: &[Token], body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in body.0..body.1 {
        if !toks[i].is_ident("match") {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < body.1 {
            match toks[j].tok {
                Tok::Open('{') if depth == 0 => break,
                Tok::Open(_) => depth += 1,
                Tok::Close(_) => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        out.push((i + 1, j));
    }
    out
}

fn is_allcaps(s: &str) -> bool {
    s.len() > 1
        && s.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}

/// `w.u8(SOME_TAG)` — the whole argument list is one ALL_CAPS constant.
fn is_allcaps_tag_write(toks: &[Token], open: usize) -> bool {
    let close = matching_close(toks, open);
    close == open + 2 && toks[open + 1].ident().is_some_and(is_allcaps)
}

/// A `u8` read whose value only selects a branch: lexically inside a
/// `match` scrutinee, or bound via `let name = r.u8()...` to a name that
/// is later only matched on or compared.
fn is_tag_read(toks: &[Token], f: &FnItem, scruts: &[(usize, usize)], i: usize) -> bool {
    if scruts.iter().any(|&(a, b)| i >= a && i < b) {
        return true;
    }
    // `let name = recv . u8 ( ...` — op ident at i, recv at i-2, `=` at i-3.
    if i < 4
        || !toks[i - 1].is_punct('.')
        || toks[i - 2].ident().is_none()
        || !toks[i - 3].is_punct('=')
    {
        return false;
    }
    let Some(name) = toks[i - 4].ident() else { return false };
    let has_let = (i.saturating_sub(7)..i - 4).any(|k| toks[k].is_ident("let"));
    if !has_let {
        return false;
    }
    for p in f.body.0..f.body.1 {
        if p == i - 4 || !toks[p].is_ident(name) {
            continue;
        }
        if scruts.iter().any(|&(a, b)| p >= a && p < b) {
            return true; // `match name { .. }`
        }
        let eq_after = toks.get(p + 1).is_some_and(|t| t.is_punct('=') || t.is_punct('!'))
            && toks.get(p + 2).is_some_and(|t| t.is_punct('='));
        let eq_before = p >= 2
            && toks[p - 1].is_punct('=')
            && (toks[p - 2].is_punct('=') || toks[p - 2].is_punct('!'));
        if eq_after || eq_before {
            return true; // compared against a constant
        }
    }
    false
}

/// True if the argument list `open..close` hands a writer/reader variable
/// to an uninterpreted helper (a hidden tail read/write). Arguments that
/// belong to a *recognized* nested-codec call are skipped — those are
/// already counted as `nested`.
fn has_bare_io_var(toks: &[Token], open: usize, close: usize, io_vars: &[String]) -> bool {
    let mut p = open + 1;
    while p < close {
        if let Some(id) = toks[p].ident() {
            if NESTED.contains(&id)
                && matches!(toks.get(p + 1).map(|t| &t.tok), Some(Tok::Open('(')))
                && p > 0
                && (toks[p - 1].is_punct('.') || toks[p - 1].tok == Tok::Colon2)
            {
                p = matching_close(toks, p + 1) + 1;
                continue;
            }
            if io_vars.iter().any(|v| v == id) && !toks.get(p + 1).is_some_and(|t| t.is_punct('.'))
            {
                return true;
            }
        }
        p += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_items};

    fn w1(src: &str) -> Vec<Finding> {
        check_w1("x.rs", &strip_test_items(&lex(src)))
    }

    #[test]
    fn symmetric_linear_codec_is_clean() {
        let src = r#"
            impl Msg {
                pub fn encode(&self) -> Bytes {
                    let mut w = Writer::new();
                    w.u8(self.kind).varint(self.id).string(&self.name);
                    w.finish()
                }
                pub fn decode(buf: &[u8]) -> Result<Msg, E> {
                    let mut r = Reader::new(buf);
                    let kind = r.u8()?;
                    let id = r.varint()?;
                    let name = r.string()?.to_string();
                    Ok(Msg { kind, id, name })
                }
            }
        "#;
        assert!(w1(src).is_empty());
    }

    #[test]
    fn missing_decode_read_fires() {
        let src = r#"
            impl Msg {
                pub fn encode(&self) -> Bytes {
                    let mut w = Writer::new();
                    w.varint(self.id).varint(self.extra);
                    w.finish()
                }
                pub fn decode(buf: &[u8]) -> Result<Msg, E> {
                    let mut r = Reader::new(buf);
                    let id = r.varint()?;
                    Ok(Msg { id, extra: 0 })
                }
            }
        "#;
        let fs = w1(src);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].key.contains("varint+varint/varint"), "{}", fs[0].key);
    }

    #[test]
    fn variant_tags_and_match_arms_pair_up() {
        let src = r#"
            impl Pk {
                fn encode(&self) -> Bytes {
                    let mut w = Writer::new();
                    w.u8(VERSION);
                    match self {
                        Pk::A(p) => { w.u8(T_A).varint(p.x).raw(&p.body); }
                        Pk::B { y } => { w.u8(T_B).u16(*y); }
                    }
                    w.finish()
                }
                fn decode(buf: &[u8]) -> Result<Pk, E> {
                    let mut r = Reader::new(buf);
                    let v = r.u8()?;
                    if v != VERSION { return Err(E::Version); }
                    match r.u8()? {
                        T_A => {
                            let x = r.varint()?;
                            let body = rest_of(buf, &mut r);
                            Ok(Pk::A(Inner { x, body }))
                        }
                        T_B => Ok(Pk::B { y: r.u16()? }),
                        _ => Err(E::Tag),
                    }
                }
            }
            fn rest_of(buf: &[u8], r: &mut Reader) -> Bytes { b(r.rest()) }
        "#;
        assert!(w1(src).is_empty());
    }

    #[test]
    fn missing_field_in_one_arm_fires() {
        let src = r#"
            impl Pk {
                fn encode(&self) -> Bytes {
                    let mut w = Writer::new();
                    match self {
                        Pk::A { x, y } => { w.u8(T_A).varint(*x).varint(*y); }
                    }
                    w.finish()
                }
                fn decode(buf: &[u8]) -> Result<Pk, E> {
                    let mut r = Reader::new(buf);
                    match r.u8()? {
                        T_A => Ok(Pk::A { x: r.varint()?, y: 0 }),
                        _ => Err(E::Tag),
                    }
                }
            }
        "#;
        let fs = w1(src);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].key.contains("|A|"), "{}", fs[0].key);
    }

    #[test]
    fn loops_and_nested_codecs_pair_up() {
        let src = r#"
            impl Batch {
                fn encode_into(&self, w: &mut Writer) {
                    w.varint(self.items.len() as u64);
                    for it in &self.items {
                        it.encode_into(w);
                    }
                }
                fn decode_from(r: &mut Reader) -> Result<Batch, E> {
                    let n = r.varint()? as usize;
                    let mut items = Vec::new();
                    for _ in 0..n {
                        items.push(Item::decode_from(r)?);
                    }
                    Ok(Batch { items })
                }
            }
        "#;
        assert!(w1(src).is_empty());
    }

    #[test]
    fn loop_read_does_not_pair_with_straightline_write() {
        let src = r#"
            impl Batch {
                fn encode_into(&self, w: &mut Writer) {
                    w.varint(self.a).varint(self.b);
                }
                fn decode_from(r: &mut Reader) -> Result<Batch, E> {
                    let mut v = Vec::new();
                    for _ in 0..2 {
                        v.push(r.varint()?);
                    }
                    Ok(Batch { v })
                }
            }
        "#;
        assert_eq!(w1(src).len(), 1);
    }

    #[test]
    fn unpaired_fns_are_skipped() {
        let src = r#"
            impl OnlyEnc {
                fn encode(&self) -> Bytes {
                    let mut w = Writer::new();
                    w.varint(self.id);
                    w.finish()
                }
            }
        "#;
        assert!(w1(src).is_empty());
    }

    #[test]
    fn unpaired_decode_fires() {
        let src = r#"
            impl OnlyDec {
                fn decode(buf: &[u8]) -> Result<OnlyDec, E> {
                    let mut r = Reader::new(buf);
                    Ok(OnlyDec { id: r.varint()? })
                }
            }
        "#;
        let fs = w1(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].key.contains("unpaired-read"), "{}", fs[0].key);
    }

    #[test]
    fn view_peek_is_a_sanctioned_unpaired_reader() {
        let src = r#"
            impl FrameView {
                pub fn peek(frame: &[u8]) -> Option<FrameView> {
                    let mut r = Reader::new(frame);
                    let kind = r.u8().ok()?;
                    let dest = r.varint().ok()?;
                    Some(FrameView { kind, dest })
                }
            }
        "#;
        assert!(w1(src).is_empty(), "{:?}", w1(src));
    }

    #[test]
    fn peek_on_non_view_type_fires() {
        let src = r#"
            impl Frame {
                pub fn peek(frame: &[u8]) -> Option<u8> {
                    let mut r = Reader::new(frame);
                    r.u8().ok()
                }
            }
        "#;
        let fs = w1(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].key.contains("peek-on-non-view"), "{}", fs[0].key);
    }

    #[test]
    fn writing_peek_fires() {
        let src = r#"
            impl FrameView {
                pub fn peek(frame: &[u8]) -> Bytes {
                    let mut r = Reader::new(frame);
                    let mut w = Writer::new();
                    w.u8(r.u8().unwrap_or(0));
                    w.finish()
                }
            }
        "#;
        let fs = w1(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].key.contains("peek-writes"), "{}", fs[0].key);
    }
}
