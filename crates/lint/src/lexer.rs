//! A lightweight Rust lexer: just enough token structure for the lint
//! rules — identifiers, punctuation, balanced delimiters, line numbers —
//! with comments, strings, char literals, and lifetimes handled so that
//! a `HashMap` in a doc comment or an `"Instant"` in a string literal
//! never produces a finding.
//!
//! This is deliberately not a parser. The rules work on token patterns
//! (in the style of the hand-rolled JSON reader in
//! `crates/bench/src/compare.rs`), which keeps the whole analyzer
//! dependency-free and fast enough to run on every file of the
//! workspace in well under a second.

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (value dropped).
    Num,
    /// String / byte-string / char literal (content dropped).
    Lit,
    /// `::`
    Colon2,
    /// `=>`
    FatArrow,
    /// `(`, `[`, `{`
    Open(char),
    /// `)`, `]`, `}`
    Close(char),
    /// Any other single punctuation character.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Tokenize Rust source. Comments (line, nested block, doc) and literal
/// contents are dropped; everything else becomes a [`Token`] with its
/// line number.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                toks.push(Token { tok: Tok::Lit, line });
                i = skip_string(b, i, &mut line);
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                toks.push(Token { tok: Tok::Lit, line });
                i = skip_prefixed_string(b, i, &mut line);
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = b.get(i + 1).copied().unwrap_or(0);
                if is_ident_start(next) && b.get(i + 2) != Some(&b'\'') {
                    // Lifetime: skip the quote and the identifier.
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                } else {
                    toks.push(Token { tok: Tok::Lit, line });
                    i += 1; // opening quote
                    if i < b.len() && b[i] == b'\\' {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    // Closing quote (tolerate malformed input).
                    while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                        i += 1;
                    }
                    i += 1;
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                toks.push(Token { tok: Tok::Ident(src[start..i].to_string()), line });
            }
            _ if c.is_ascii_digit() => {
                toks.push(Token { tok: Tok::Num, line });
                while i < b.len() && (is_ident_cont(b[i]) || b[i] == b'.') {
                    // Stop a number before `..` so ranges stay punctuation.
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                toks.push(Token { tok: Tok::Colon2, line });
                i += 2;
            }
            b'=' if b.get(i + 1) == Some(&b'>') => {
                toks.push(Token { tok: Tok::FatArrow, line });
                i += 2;
            }
            b'(' | b'[' | b'{' => {
                toks.push(Token { tok: Tok::Open(c as char), line });
                i += 1;
            }
            b')' | b']' | b'}' => {
                toks.push(Token { tok: Tok::Close(c as char), line });
                i += 1;
            }
            _ => {
                toks.push(Token { tok: Tok::Punct(c as char), line });
                i += 1;
            }
        }
    }
    toks
}

fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  b"..."  br"..."  br#"..."#  (not an identifier
    // that merely starts with r/b).
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    j > i && b.get(j) == Some(&b'"') || (b[i] == b'b' && b.get(i + 1) == Some(&b'"'))
}

fn skip_prefixed_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if b[i] == b'b' {
        i += 1;
    }
    if b.get(i) == Some(&b'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&b'"'));
    if raw {
        i += 1; // opening quote
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
            }
            if b[i] == b'"' {
                let mut k = 0;
                while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        i
    } else {
        skip_string(b, i, line)
    }
}

/// Skip a plain `"..."` string starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Remove every item annotated with a `test`-mentioning attribute —
/// `#[cfg(test)] mod tests { … }`, `#[test] fn …` — so rules only see
/// shipping code. Works on the token stream: an attribute whose tokens
/// mention `test` causes the attribute *and* the following item (up to
/// its closing brace or terminating semicolon) to be dropped.
pub fn strip_test_items(toks: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Open('[')))
        {
            // Find the attribute's closing bracket.
            let mut depth = 0;
            let mut j = i + 1;
            let mut mentions_test = false;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Open(_) => depth += 1,
                    Tok::Close(_) => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(ref s) if s == "test" => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            if mentions_test {
                // Skip the attribute, any further attributes, and the item.
                i = j + 1;
                while i < toks.len()
                    && toks[i].is_punct('#')
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Open('[')))
                {
                    let mut depth = 0;
                    let mut k = i + 1;
                    while k < toks.len() {
                        match toks[k].tok {
                            Tok::Open(_) => depth += 1,
                            Tok::Close(_) => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k + 1;
                }
                // Item body: everything up to `;` at depth 0 or a
                // balanced `{ … }`.
                let mut depth = 0;
                while i < toks.len() {
                    match toks[i].tok {
                        Tok::Open('{') => {
                            depth += 1;
                        }
                        Tok::Close('}') => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        Tok::Punct(';') if depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn comments_and_strings_dropped() {
        let src = r##"
            // Instant in a comment
            /* HashMap /* nested */ SystemTime */
            let x = "Instant inside"; // gone
            let y = r#"raw HashMap"#;
            let z = b"bytes";
            let c = 'h';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "Instant" || s == "HashMap" || s == "SystemTime"));
        assert_eq!(ids, ["let", "x", "let", "y", "let", "z", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> Reader<'_> { 'x' }";
        let toks = lex(src);
        // Exactly one literal: the 'x' char.
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Lit).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("Reader")));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "a\n/* two\nlines */\nb \"s\ntr\" c";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
    }

    #[test]
    fn multi_char_puncts() {
        let toks = lex("A::B => x");
        assert!(toks.iter().any(|t| t.tok == Tok::Colon2));
        assert!(toks.iter().any(|t| t.tok == Tok::FatArrow));
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let toks = lex("for i in 0..n {}");
        // 0 is a Num, then two '.' puncts, then ident n.
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert!(toks.iter().any(|t| t.is_ident("n")));
    }

    #[test]
    fn strip_removes_cfg_test_mod_and_test_fns() {
        let src = r#"
            fn keep() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn gone() { b.unwrap(); }
            }
            #[test]
            fn also_gone() { c.unwrap(); }
            fn keep2() {}
        "#;
        let toks = strip_test_items(&lex(src));
        let ids: Vec<_> = toks.iter().filter_map(|t| t.ident()).collect();
        assert!(ids.contains(&"keep"));
        assert!(ids.contains(&"keep2"));
        assert!(!ids.contains(&"gone"));
        assert!(!ids.contains(&"also_gone"));
        assert!(!ids.contains(&"b"));
        assert!(!ids.contains(&"c"));
    }
}
