//! `rina-lint` CLI: scan the workspace, diff against `lint-allow.toml`,
//! print clickable `file:line` diagnostics grouped by rule, and gate CI.
//!
//! Exit codes (mirroring `bench-compare`): `0` clean, `1` unbaselined
//! findings or (under `--deny`) stale baseline entries, `2` bad input.

#![forbid(unsafe_code)]

use rina_lint::{baseline, run_all, Finding};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut emit = false;
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--emit-baseline" => emit = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => allow_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root
        .or_else(|| {
            // `cargo run -p rina-lint` runs with the manifest dir set to
            // crates/lint; the workspace root is two levels up.
            std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../.."))
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let findings = match run_all(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("rina-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if emit {
        for f in &findings {
            println!("[[allow]]\nrule = \"{}\"\nkey = \"{}\"\nreason = \"\"\n", f.rule, f.key);
        }
        return ExitCode::SUCCESS;
    }

    let allow_path = allow_path.unwrap_or_else(|| root.join("lint-allow.toml"));
    let allows = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("rina-lint: {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(),
    };

    let live_keys: Vec<&str> = findings.iter().map(|f| f.key.as_str()).collect();
    let unbaselined: Vec<&Finding> =
        findings.iter().filter(|f| !allows.iter().any(|a| a.key == f.key)).collect();
    let stale: Vec<&baseline::Allow> =
        allows.iter().filter(|a| !live_keys.contains(&a.key.as_str())).collect();

    report(&findings, &unbaselined, &stale, deny);

    let fail = !unbaselined.is_empty() || (deny && !stale.is_empty());
    if fail {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn report(findings: &[Finding], unbaselined: &[&Finding], stale: &[&baseline::Allow], deny: bool) {
    let rules = ["D1", "D2", "W1", "R1", "C1"];
    if !unbaselined.is_empty() {
        for rule in rules {
            let of_rule: Vec<&&Finding> = unbaselined.iter().filter(|f| f.rule == rule).collect();
            if of_rule.is_empty() {
                continue;
            }
            eprintln!("{rule}: {}", rule_title(rule));
            for f in &of_rule {
                eprintln!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.msg);
            }
            eprintln!();
        }
    }
    for a in stale {
        eprintln!(
            "stale baseline entry (lint-allow.toml:{}): `{}` matches no live finding{}",
            a.line,
            a.key,
            if deny { "" } else { " (fails under --deny)" }
        );
    }

    let mut md = String::new();
    md.push_str("## rina-lint\n\n");
    md.push_str("| rule | live findings | baselined | new |\n|---|---|---|---|\n");
    for rule in rules {
        let live = findings.iter().filter(|f| f.rule == rule).count();
        let new = unbaselined.iter().filter(|f| f.rule == rule).count();
        md.push_str(&format!("| {rule} | {live} | {} | {new} |\n", live - new));
    }
    let verdict = if !unbaselined.is_empty() {
        format!("**FAIL** — {} unbaselined finding(s)", unbaselined.len())
    } else if deny && !stale.is_empty() {
        format!("**FAIL** — {} stale baseline entr(ies)", stale.len())
    } else if !stale.is_empty() {
        format!("PASS with {} stale baseline entr(ies)", stale.len())
    } else {
        "**PASS** — workspace is lint-clean against the baseline".to_string()
    };
    md.push_str(&format!("\n{verdict}\n"));
    if !unbaselined.is_empty() {
        md.push_str("\n| finding | where |\n|---|---|\n");
        for f in unbaselined.iter().take(50) {
            md.push_str(&format!("| `{}` | `{}:{}` |\n", f.key, f.file, f.line));
        }
    }
    println!("{md}");
    if let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&summary) {
            let _ = writeln!(f, "{md}");
        }
    }
}

fn rule_title(rule: &str) -> &'static str {
    match rule {
        "D1" => "ambient nondeterminism (wall clock / OS threads / OS randomness)",
        "D2" => "hash-order iteration reaching output",
        "W1" => "wire-codec encode/decode asymmetry",
        "R1" => "panic sites in protocol hot paths",
        "C1" => "undocumented policy-config fields",
        _ => "",
    }
}

const USAGE: &str = "\
rina-lint: workspace determinism & protocol-invariant static analysis

USAGE: rina-lint [--deny] [--root DIR] [--baseline FILE] [--emit-baseline]

  --deny            also fail on stale lint-allow.toml entries (CI mode)
  --root DIR        workspace root (default: two levels above the crate)
  --baseline FILE   baseline path (default: <root>/lint-allow.toml)
  --emit-baseline   print a TOML skeleton for all current findings; every
                    `reason` is left empty and must be justified by hand
";
