//! # rina-rib — the Resource Information Base and RIEP
//!
//! Every IPC process keeps a Resource Information Base: the shared state
//! that the paper's *IPC Management* task maintains via the Resource
//! Information Exchange Protocol (RIEP) — "application names, addresses,
//! and performance capabilities, used by various DIF coordination tasks,
//! such as routing, connection management, etc." (§3.1).
//!
//! The RIB here is a path-named object store with per-object versions and
//! single-writer semantics (each object is owned by the member that
//! originates it — e.g. `/lsa/<addr>` by the member at `<addr>`). RIEP is
//! realized as version-guarded flooding: an update is applied if strictly
//! newer and then re-disseminated, so updates reach every member of the DIF
//! exactly once per version regardless of topology. Deletions are
//! tombstones so they win over stale resurrections.
//!
//! Because dissemination is unreliable, every RIB also maintains an
//! incremental **per-subtree digest table** ([`DigestTable`]): one
//! `(object_count, digest)` pair per first path component (`/members`,
//! `/lsa`, …), where the digest XOR-aggregates collision-resistant
//! per-object fingerprints. Two members compare tables (carried in
//! hellos and enrollment requests) to localize divergence to subtrees,
//! then exchange **deltas**: a version [`Rib::summary`] of the diverged
//! subtree one way, the missing/newer objects ([`Rib::delta_for`]) the
//! other. The repair cost of any divergence therefore tracks the
//! divergence, not the RIB — the basis of digest-driven anti-entropy
//! and of O(missing) re-enrollment sync (DESIGN.md §6).
//!
//! The crate is sans-IO: [`Rib`] produces [`RibEvent`]s for the local IPC
//! process (routing recomputation, directory changes) and dissemination
//! items for the management task to forward; the `rina` crate moves them.
//! Hot paths that react to freshness directly can apply without event
//! bookkeeping via [`Rib::apply_remote_silent`].

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

use bytes::Bytes;
use rina_wire::codec::{Reader, Writer};
use rina_wire::WireError;
use std::collections::{BTreeMap, VecDeque};

/// One replicated object. Ordering of versions: `(version, origin)`
/// lexicographic, so concurrent writes by different members resolve
/// deterministically (higher origin wins ties — origins are DIF-internal
/// addresses, so this is arbitrary but consistent everywhere).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RibObject {
    /// Path-style instance name, e.g. `/dir/video-server`.
    pub name: String,
    /// Object class, e.g. `"dir"`, `"lsa"`.
    pub class: String,
    /// Encoded value (empty for tombstones).
    pub value: Bytes,
    /// Monotonic per-name version.
    pub version: u64,
    /// DIF-internal address of the writing member.
    pub origin: u64,
    /// True if this version deletes the object.
    pub deleted: bool,
}

impl RibObject {
    /// Encode for carriage inside a CDAP value.
    pub fn encode(&self) -> Bytes {
        let mut w =
            Writer::with_capacity(16 + self.name.len() + self.class.len() + self.value.len());
        w.string(&self.name)
            .string(&self.class)
            .bytes(&self.value)
            .varint(self.version)
            .varint(self.origin)
            .boolean(self.deleted);
        w.finish()
    }

    /// Decode from a CDAP value.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let name = r.string()?.to_string();
        let class = r.string()?.to_string();
        let value = Bytes::copy_from_slice(r.bytes()?);
        let version = r.varint()?;
        let origin = r.varint()?;
        let deleted = r.boolean()?;
        r.expect_end()?;
        Ok(RibObject { name, class, value, version, origin, deleted })
    }

    fn newer_than(&self, other: &RibObject) -> bool {
        (self.version, self.origin) > (other.version, other.origin)
    }
}

/// A change the local IPC process should react to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RibEvent {
    /// An object appeared or changed value.
    Upserted(RibObject),
    /// An object was deleted (tombstoned).
    Deleted(RibObject),
}

impl RibEvent {
    /// The object the event concerns.
    pub fn object(&self) -> &RibObject {
        match self {
            RibEvent::Upserted(o) | RibEvent::Deleted(o) => o,
        }
    }
}

/// The name-space subtree an object belongs to: the first path component
/// of its name (`/lsa/7` → `/lsa`, `/dir/echo` → `/dir`). Names without a
/// second separator are their own subtree. Digest tables, delta requests,
/// and flood suppression all work at this granularity.
pub fn subtree_of(name: &str) -> &str {
    if let Some(rest) = name.strip_prefix('/') {
        if let Some(i) = rest.find('/') {
            return &name[..i + 1];
        }
    }
    name
}

/// One object's version coordinates, without its value — the unit of a
/// delta-request summary. Two members exchange these (cheap) to discover
/// which full objects (expensive) actually need to move.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjVer {
    /// Full object name.
    pub name: String,
    /// Version counter.
    pub version: u64,
    /// Writing member's address (the version tie-breaker).
    pub origin: u64,
}

impl ObjVer {
    /// Encode into an in-progress wire value.
    pub fn encode_into(&self, w: &mut Writer) {
        w.string(&self.name).varint(self.version).varint(self.origin);
    }

    /// Decode from an in-progress wire value.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = r.string()?.to_string();
        let version = r.varint()?;
        let origin = r.varint()?;
        Ok(ObjVer { name, version, origin })
    }
}

/// Per-subtree `(object_count, digest)` summary of a RIB — the Merkle-ish
/// table hellos and enrollment requests carry. Comparing two tables
/// localizes a mismatch to the subtrees that actually diverged, so
/// anti-entropy exchanges per-subtree deltas instead of whole RIBs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DigestTable {
    /// `(subtree, object_count, digest)`, sorted by subtree name.
    entries: Vec<(String, u64, u64)>,
}

impl DigestTable {
    /// Build from `(subtree, count, digest)` triples (sorted internally).
    pub fn from_entries(mut entries: Vec<(String, u64, u64)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        DigestTable { entries }
    }

    /// The sorted `(subtree, count, digest)` triples.
    pub fn entries(&self) -> &[(String, u64, u64)] {
        &self.entries
    }

    /// This table's `(count, digest)` for one subtree.
    pub fn get(&self, subtree: &str) -> Option<(u64, u64)> {
        self.entries
            .binary_search_by(|e| e.0.as_str().cmp(subtree))
            .ok()
            .map(|i| (self.entries[i].1, self.entries[i].2))
    }

    /// Total stored objects (tombstones included) across subtrees.
    pub fn total_count(&self) -> u64 {
        self.entries.iter().map(|e| e.1).sum()
    }

    /// Whole-RIB digest: XOR over the subtree digests.
    pub fn total_digest(&self) -> u64 {
        self.entries.iter().fold(0, |d, e| d ^ e.2)
    }

    /// Subtrees whose `(count, digest)` differ between the two tables —
    /// the union, so a subtree present on only one side counts.
    pub fn mismatched(&self, other: &DigestTable) -> Vec<String> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let a = self.entries.get(i);
            let b = other.entries.get(j);
            match (a, b) {
                (Some(a), Some(b)) if a.0 == b.0 => {
                    if (a.1, a.2) != (b.1, b.2) {
                        out.push(a.0.clone());
                    }
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a.0 < b.0 => {
                    out.push(a.0.clone());
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    out.push(b.0.clone());
                    j += 1;
                }
                (Some(a), None) => {
                    out.push(a.0.clone());
                    i += 1;
                }
                (None, Some(b)) => {
                    out.push(b.0.clone());
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        out
    }

    /// Encode into an in-progress wire value.
    pub fn encode_into(&self, w: &mut Writer) {
        w.varint(self.entries.len() as u64);
        for (s, c, d) in &self.entries {
            w.string(s).varint(*c).varint(*d);
        }
    }

    /// Decode from an in-progress wire value.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.varint()? as usize;
        let mut entries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let s = r.string()?.to_string();
            let c = r.varint()?;
            let d = r.varint()?;
            entries.push((s, c, d));
        }
        Ok(DigestTable::from_entries(entries))
    }
}

/// Order-independent fingerprint of one object version, XOR-aggregated
/// into [`Rib::digest`]. Any version change changes it (versions are
/// monotonic per name), so two RIBs with equal `(object_count, digest)`
/// hold the same object versions with overwhelming probability — the
/// basis of hello-driven anti-entropy.
fn obj_fingerprint(o: &RibObject) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in o.name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Nonlinear mixing (splitmix64 finalizer) entangles version and
    // origin with the name hash. A plain XOR of `version × constant`
    // would make the digest *difference* of a version bump independent
    // of the name — two objects each one version stale then cancel in
    // the XOR aggregate, and anti-entropy would declare two diverged
    // RIBs in sync (seen in practice on lossy 22-member lines).
    h = mix(h ^ o.version.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h = mix(h ^ o.origin.rotate_left(32));
    if o.deleted {
        h = !h;
    }
    h
}

/// splitmix64's avalanche finalizer: every input bit affects every
/// output bit, making XOR-aggregated fingerprints collision-resistant
/// under correlated version bumps.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Resource Information Base of one IPC process.
#[derive(Debug, Default)]
pub struct Rib {
    /// The member's own DIF-internal address (0 until enrolled).
    origin: u64,
    objects: BTreeMap<String, RibObject>,
    events: VecDeque<RibEvent>,
    /// Objects (new versions) to disseminate to neighbors.
    outbox: VecDeque<RibObject>,
    /// XOR of [`obj_fingerprint`] over every stored object (tombstones
    /// included), maintained incrementally.
    digest: u64,
    /// Per-subtree `(count, digest)`, maintained incrementally alongside
    /// the whole-RIB digest (keys are [`subtree_of`] results).
    subtrees: BTreeMap<String, (u64, u64)>,
    /// Name prefixes with a change subscription (see [`Rib::watch_prefix`]).
    watch_prefixes: Vec<String>,
    /// Stored objects matching a watched prefix, in application order.
    watch_q: VecDeque<RibObject>,
    /// Subtrees with **local replication scope** (sorted): their objects
    /// are owner-held instead of DIF-wide. A local subtree is excluded
    /// from the digest table, the enrollment snapshot, and delta
    /// serving, and its live writes are not queued for dissemination —
    /// only its tombstones flood, so remote caches still hear deletions.
    local_subtrees: Vec<String>,
}

impl Rib {
    /// An empty RIB for a member that will write with address `origin`.
    pub fn new(origin: u64) -> Self {
        Rib { origin, ..Default::default() }
    }

    /// Update the origin address (set when enrollment assigns one).
    pub fn set_origin(&mut self, origin: u64) {
        self.origin = origin;
    }

    /// This member's origin address.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// Give `subtree` (a [`subtree_of`] result, e.g. `"/dir"`) **local
    /// replication scope**: its objects stay owner-held instead of
    /// replicating DIF-wide. From this call on the subtree disappears
    /// from [`Rib::digest_table`] (so hellos stop advertising it),
    /// [`Rib::snapshot`] (so enrollment stops copying it), and
    /// [`Rib::delta_for`]/[`Rib::summary`] (so anti-entropy never pulls
    /// it), and live writes under it skip the dissemination outbox.
    /// Tombstones still disseminate — deletion floods are how remote
    /// lookup caches hear invalidations. Watchers registered for a
    /// prefix inside the subtree are torn down: a watcher must not fire
    /// on entries that are no longer part of the replicated RIB.
    pub fn set_local_subtree(&mut self, subtree: &str) {
        if let Err(i) = self.local_subtrees.binary_search_by(|s| s.as_str().cmp(subtree)) {
            self.local_subtrees.insert(i, subtree.to_string());
        }
        self.watch_prefixes.retain(|p| subtree_of(p) != subtree);
        self.watch_q.retain(|o| subtree_of(&o.name) != subtree);
    }

    /// Whether `subtree` has local replication scope.
    pub fn is_local_subtree(&self, subtree: &str) -> bool {
        self.local_subtrees.binary_search_by(|s| s.as_str().cmp(subtree)).is_ok()
    }

    /// The subtrees with local replication scope, sorted.
    pub fn local_subtrees(&self) -> &[String] {
        &self.local_subtrees
    }

    /// Write (create or update) an object authored locally. The new version
    /// supersedes any existing one and is queued for dissemination.
    pub fn write_local(&mut self, name: &str, class: &str, value: Bytes) {
        let version = self.objects.get(name).map(|o| o.version + 1).unwrap_or(1);
        let obj = RibObject {
            name: name.to_string(),
            class: class.to_string(),
            value,
            version,
            origin: self.origin,
            deleted: false,
        };
        self.store(obj.clone());
        self.events.push_back(RibEvent::Upserted(obj.clone()));
        if !self.is_local_subtree(subtree_of(&obj.name)) {
            self.outbox.push_back(obj);
        }
    }

    /// Subscribe to object-level changes under `prefix`: every stored
    /// version (local write, remote apply, tombstone — *any* path into
    /// the RIB) whose name starts with `prefix` is queued for
    /// [`Rib::poll_watch`]. This is the delta hook consumers like the
    /// routing engine use to mirror a subtree incrementally instead of
    /// re-decoding it: because it sits on the single store choke point,
    /// deletions propagate exactly like upserts, whichever protocol path
    /// delivered them.
    pub fn watch_prefix(&mut self, prefix: &str) {
        if !self.watch_prefixes.iter().any(|p| p == prefix) {
            self.watch_prefixes.push(prefix.to_string());
        }
    }

    /// Drain the next watched change (in application order).
    pub fn poll_watch(&mut self) -> Option<RibObject> {
        self.watch_q.pop_front()
    }

    /// Tear down the subscription registered by [`Rib::watch_prefix`]
    /// for exactly `prefix`, dropping any of its queued-but-undrained
    /// changes. No-op if the prefix was never watched (or was already
    /// torn down by [`Rib::set_local_subtree`]).
    pub fn unwatch_prefix(&mut self, prefix: &str) {
        if !self.watch_prefixes.iter().any(|p| p == prefix) {
            return;
        }
        self.watch_prefixes.retain(|p| p != prefix);
        // Keep queued changes still covered by another live watcher.
        let live = self.watch_prefixes.clone();
        self.watch_q.retain(|o| live.iter().any(|p| o.name.starts_with(p.as_str())));
    }

    /// Insert `obj`, keeping the incremental digests (whole-RIB and
    /// per-subtree) in sync.
    fn store(&mut self, obj: RibObject) {
        if self.watch_prefixes.iter().any(|p| obj.name.starts_with(p.as_str())) {
            self.watch_q.push_back(obj.clone());
        }
        let st = subtree_of(&obj.name);
        // get_mut-then-insert instead of the entry API: the common case
        // (subtree exists) must not allocate an owned key per store —
        // this runs once per applied object, millions of times in a big
        // assembly.
        if self.subtrees.get_mut(st).is_none() {
            self.subtrees.insert(st.to_string(), (0, 0));
        }
        let entry = self.subtrees.get_mut(st).expect("just ensured");
        if let Some(old) = self.objects.get(&obj.name) {
            let f = obj_fingerprint(old);
            self.digest ^= f;
            entry.1 ^= f;
        } else {
            entry.0 += 1;
        }
        let f = obj_fingerprint(&obj);
        self.digest ^= f;
        entry.1 ^= f;
        self.objects.insert(obj.name.clone(), obj);
    }

    /// All stored objects (tombstones included) in `subtree`, name order.
    fn subtree_objects<'a>(&'a self, subtree: &'a str) -> impl Iterator<Item = &'a RibObject> + 'a {
        self.objects
            .range(subtree.to_string()..)
            .take_while(move |(k, _)| k.starts_with(subtree))
            .filter(move |(k, _)| subtree_of(k) == subtree)
            .map(|(_, v)| v)
    }

    /// [`Rib::write_local`], but a no-op when the object already holds
    /// exactly `value` (live, same class). Keeps idempotent re-writes —
    /// enrollment re-grants, repeated registrations — from bumping
    /// versions, which would re-flood an unchanged object DIF-wide.
    /// Returns whether a write happened.
    pub fn write_local_if_changed(&mut self, name: &str, class: &str, value: Bytes) -> bool {
        match self.objects.get(name) {
            Some(o) if !o.deleted && o.class == class && o.value == value => false,
            _ => {
                self.write_local(name, class, value);
                true
            }
        }
    }

    /// Tombstone an object authored locally. No-op if absent or already
    /// deleted.
    pub fn delete_local(&mut self, name: &str) {
        let Some(cur) = self.objects.get(name) else {
            return;
        };
        if cur.deleted {
            return;
        }
        let obj = RibObject {
            name: cur.name.clone(),
            class: cur.class.clone(),
            value: Bytes::new(),
            version: cur.version + 1,
            origin: self.origin,
            deleted: true,
        };
        self.store(obj.clone());
        self.events.push_back(RibEvent::Deleted(obj.clone()));
        self.outbox.push_back(obj);
    }

    /// Apply an object received from a peer. Returns `true` if it was newer
    /// than local state (caller should then re-flood it to other
    /// neighbors); `false` if stale or identical.
    pub fn apply_remote(&mut self, obj: RibObject) -> bool {
        match self.objects.get(&obj.name) {
            Some(cur) if !obj.newer_than(cur) => return false,
            _ => {}
        }
        let ev = if obj.deleted {
            RibEvent::Deleted(obj.clone())
        } else {
            RibEvent::Upserted(obj.clone())
        };
        self.store(obj);
        self.events.push_back(ev);
        true
    }

    /// [`Rib::apply_remote`] without queueing a [`RibEvent`] — for
    /// callers that react to the returned freshness directly and would
    /// only drain-and-discard the event. Skipping it avoids cloning
    /// every applied object, which matters when a joiner absorbs a
    /// multi-thousand-object sync stream.
    pub fn apply_remote_silent(&mut self, obj: RibObject) -> bool {
        match self.objects.get(&obj.name) {
            Some(cur) if !obj.newer_than(cur) => return false,
            _ => {}
        }
        self.store(obj);
        true
    }

    /// Current value of a live (non-deleted) object.
    pub fn get(&self, name: &str) -> Option<&RibObject> {
        self.objects.get(name).filter(|o| !o.deleted)
    }

    /// All live objects whose names start with `prefix`, in name order.
    pub fn iter_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a RibObject> + 'a {
        self.objects
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .filter(|o| !o.deleted)
    }

    /// Names of every live object whose last write came from `origin` —
    /// what a departed member left behind (its LSA, its directory
    /// registrations). Garbage collection tombstones each name via
    /// [`Rib::delete_local`], so the deletions flood and the digests
    /// converge like any other write.
    pub fn live_of_origin(&self, origin: u64) -> Vec<String> {
        self.objects
            .values()
            .filter(|o| !o.deleted && o.origin == origin)
            .map(|o| o.name.clone())
            .collect()
    }

    /// Every object including tombstones — the enrollment sync set a new
    /// member receives (§5.2). Local-scope subtrees are excluded: their
    /// objects are owner-held, so a joiner never receives them.
    pub fn snapshot(&self) -> Vec<RibObject> {
        self.objects
            .values()
            .filter(|o| !self.is_local_subtree(subtree_of(&o.name)))
            .cloned()
            .collect()
    }

    /// Borrowing iterator over every stored object, tombstones included
    /// — for callers that filter before cloning (periodic
    /// re-advertisement clones 3 own objects, not a 3000-object RIB).
    pub fn iter_all(&self) -> impl Iterator<Item = &RibObject> + '_ {
        self.objects.values()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.values().filter(|o| !o.deleted).count()
    }

    /// Number of stored objects, tombstones included (pairs with
    /// [`Rib::digest`] for anti-entropy comparisons).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Order-independent fingerprint of the stored object versions. Two
    /// RIBs with equal `(object_count, digest)` are in sync; a mismatch
    /// means someone missed an update.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Per-subtree digest table (see [`DigestTable`]): comparing two
    /// tables localizes divergence to the subtrees that actually differ.
    /// Local-scope subtrees are omitted — hellos must not advertise
    /// owner-held state, or every peer would try to pull it.
    pub fn digest_table(&self) -> DigestTable {
        DigestTable::from_entries(
            self.subtrees
                .iter()
                .filter(|(s, _)| !self.is_local_subtree(s))
                .map(|(s, &(c, d))| (s.clone(), c, d))
                .collect(),
        )
    }

    /// This RIB's `(count, digest)` for one subtree, if any object of it
    /// is stored.
    pub fn subtree_digest(&self, subtree: &str) -> Option<(u64, u64)> {
        self.subtrees.get(subtree).copied()
    }

    /// Version summary of every stored object (tombstones included) in
    /// `subtree`, in name order — what a delta request carries instead of
    /// the objects themselves. Empty for local-scope subtrees: they are
    /// never offered for anti-entropy.
    pub fn summary(&self, subtree: &str) -> Vec<ObjVer> {
        if self.is_local_subtree(subtree) {
            return Vec::new();
        }
        self.subtree_objects(subtree)
            .map(|o| ObjVer { name: o.name.clone(), version: o.version, origin: o.origin })
            .collect()
    }

    /// Answer a delta request: given a peer's version `summary` of
    /// `subtree` restricted to names in `[from, upto)` (empty bound =
    /// unbounded), return the objects *we* hold in that range which the
    /// peer lacks or holds older, plus `true` if the summary proves the
    /// peer holds versions newer than ours (so the caller should issue
    /// its own request for this subtree).
    pub fn delta_for(
        &self,
        subtree: &str,
        from: &str,
        upto: &str,
        summary: &[ObjVer],
    ) -> (Vec<RibObject>, bool) {
        if self.is_local_subtree(subtree) {
            // Owner-held state is never served by anti-entropy, and a
            // peer's summary of it proves nothing we should pull.
            return (Vec::new(), false);
        }
        let theirs: BTreeMap<&str, (u64, u64)> =
            summary.iter().map(|v| (v.name.as_str(), (v.version, v.origin))).collect();
        let in_range =
            |name: &str| (from.is_empty() || name >= from) && (upto.is_empty() || name < upto);
        let mut send = Vec::new();
        for o in self.subtree_objects(subtree) {
            if !in_range(&o.name) {
                continue;
            }
            match theirs.get(o.name.as_str()) {
                Some(&(v, org)) if (v, org) >= (o.version, o.origin) => {}
                _ => send.push(o.clone()),
            }
        }
        let behind =
            summary.iter().filter(|v| in_range(&v.name)).any(|v| match self.objects.get(&v.name) {
                Some(o) => (v.version, v.origin) > (o.version, o.origin),
                None => true,
            });
        (send, behind)
    }

    /// True when no live objects exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain pending local events.
    pub fn poll_event(&mut self) -> Option<RibEvent> {
        self.events.pop_front()
    }

    /// Drain objects queued for dissemination to neighbors.
    pub fn poll_dissemination(&mut self) -> Option<RibObject> {
        self.outbox.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain_events(r: &mut Rib) -> Vec<RibEvent> {
        std::iter::from_fn(|| r.poll_event()).collect()
    }

    #[test]
    fn local_write_and_get() {
        let mut rib = Rib::new(5);
        rib.write_local("/dir/app-a", "dir", Bytes::from_static(b"\x2a"));
        let o = rib.get("/dir/app-a").unwrap();
        assert_eq!(o.version, 1);
        assert_eq!(o.origin, 5);
        assert_eq!(o.value.as_ref(), b"\x2a");
        let evs = drain_events(&mut rib);
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0], RibEvent::Upserted(_)));
        assert!(rib.poll_dissemination().is_some());
        assert!(rib.poll_dissemination().is_none());
    }

    #[test]
    fn rewrite_bumps_version() {
        let mut rib = Rib::new(1);
        rib.write_local("/x", "c", Bytes::from_static(b"1"));
        rib.write_local("/x", "c", Bytes::from_static(b"2"));
        assert_eq!(rib.get("/x").unwrap().version, 2);
        assert_eq!(rib.get("/x").unwrap().value.as_ref(), b"2");
    }

    #[test]
    fn write_if_changed_skips_identical_values() {
        let mut rib = Rib::new(1);
        assert!(rib.write_local_if_changed("/x", "c", Bytes::from_static(b"1")));
        assert!(!rib.write_local_if_changed("/x", "c", Bytes::from_static(b"1")));
        assert_eq!(rib.get("/x").unwrap().version, 1, "no version churn");
        assert!(rib.poll_dissemination().is_some());
        assert!(rib.poll_dissemination().is_none(), "no re-flood queued");
        assert!(rib.write_local_if_changed("/x", "c", Bytes::from_static(b"2")));
        // A tombstoned object counts as changed: it must resurrect.
        rib.delete_local("/x");
        assert!(rib.write_local_if_changed("/x", "c", Bytes::from_static(b"2")));
        assert_eq!(rib.get("/x").unwrap().value.as_ref(), b"2");
    }

    #[test]
    fn remote_newer_applies_and_floods_stale_does_not() {
        let mut a = Rib::new(1);
        let mut b = Rib::new(2);
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"v1"));
        let o1 = a.poll_dissemination().unwrap();
        assert!(b.apply_remote(o1.clone()));
        assert!(!b.apply_remote(o1.clone()), "duplicate is stale");
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"v2"));
        let o2 = a.poll_dissemination().unwrap();
        assert!(b.apply_remote(o2));
        assert!(!b.apply_remote(o1), "old version rejected");
        assert_eq!(b.get("/lsa/1").unwrap().value.as_ref(), b"v2");
    }

    #[test]
    fn delete_tombstones_and_wins() {
        let mut a = Rib::new(1);
        a.write_local("/dir/app", "dir", Bytes::from_static(b"7"));
        let create = a.poll_dissemination().unwrap();
        a.delete_local("/dir/app");
        let tomb = a.poll_dissemination().unwrap();
        assert!(a.get("/dir/app").is_none());
        assert_eq!(a.len(), 0);

        // A peer that sees the delete after the create ends deleted…
        let mut b = Rib::new(2);
        assert!(b.apply_remote(create.clone()));
        assert!(b.apply_remote(tomb.clone()));
        assert!(b.get("/dir/app").is_none());
        // …and a peer that sees them reordered also ends deleted.
        let mut c = Rib::new(3);
        assert!(c.apply_remote(tomb));
        assert!(!c.apply_remote(create));
        assert!(c.get("/dir/app").is_none());
    }

    #[test]
    fn delete_absent_is_noop() {
        let mut a = Rib::new(1);
        a.delete_local("/nope");
        assert!(drain_events(&mut a).is_empty());
        assert!(a.poll_dissemination().is_none());
    }

    #[test]
    fn live_of_origin_filters_tombstones_and_other_members() {
        let mut a = Rib::new(7);
        a.write_local("/lsa/7", "lsa", Bytes::from_static(b"me"));
        a.write_local("/dir/app7", "dir", Bytes::from_static(b"7"));
        a.write_local("/blocks/7", "block", Bytes::from_static(b"b"));
        a.delete_local("/dir/app7");
        // Another member's object arrives via dissemination.
        let mut b = Rib::new(9);
        b.write_local("/lsa/9", "lsa", Bytes::from_static(b"peer"));
        let obj = b.poll_dissemination().unwrap();
        assert!(a.apply_remote(obj));

        let mut live = a.live_of_origin(7);
        live.sort();
        assert_eq!(live, vec!["/blocks/7".to_string(), "/lsa/7".to_string()]);
        assert_eq!(a.live_of_origin(9), vec!["/lsa/9".to_string()]);
        assert!(a.live_of_origin(3).is_empty());
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two members write the same name at the same version.
        let mut a = Rib::new(1);
        let mut b = Rib::new(9);
        a.write_local("/contested", "c", Bytes::from_static(b"low"));
        b.write_local("/contested", "c", Bytes::from_static(b"high"));
        let oa = a.poll_dissemination().unwrap();
        let ob = b.poll_dissemination().unwrap();
        // Cross-apply in both orders: both converge on origin 9's value.
        let mut x = Rib::new(50);
        assert!(x.apply_remote(oa.clone()));
        assert!(x.apply_remote(ob.clone()));
        let mut y = Rib::new(51);
        assert!(y.apply_remote(ob));
        assert!(!y.apply_remote(oa));
        assert_eq!(x.get("/contested").unwrap().value, y.get("/contested").unwrap().value);
        assert_eq!(x.get("/contested").unwrap().value.as_ref(), b"high");
    }

    #[test]
    fn prefix_iteration_ordered_and_filtered() {
        let mut rib = Rib::new(1);
        rib.write_local("/dir/b", "dir", Bytes::new());
        rib.write_local("/dir/a", "dir", Bytes::new());
        rib.write_local("/lsa/1", "lsa", Bytes::new());
        rib.write_local("/dir/c", "dir", Bytes::new());
        rib.delete_local("/dir/b");
        let names: Vec<_> = rib.iter_prefix("/dir/").map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["/dir/a", "/dir/c"]);
    }

    #[test]
    fn snapshot_includes_tombstones() {
        let mut rib = Rib::new(1);
        rib.write_local("/a", "c", Bytes::new());
        rib.delete_local("/a");
        rib.write_local("/b", "c", Bytes::new());
        let snap = rib.snapshot();
        assert_eq!(snap.len(), 2);
        // A fresh member applying the snapshot converges.
        let mut n = Rib::new(7);
        for o in snap {
            n.apply_remote(o);
        }
        assert!(n.get("/a").is_none());
        assert!(n.get("/b").is_some());
    }

    #[test]
    fn digest_tracks_state_not_history() {
        // Two RIBs reaching the same object versions by different routes
        // end with the same digest; divergent state differs.
        let mut a = Rib::new(1);
        a.write_local("/x", "c", Bytes::from_static(b"1"));
        a.write_local("/y", "c", Bytes::from_static(b"2"));
        let (ox, oy) = (a.poll_dissemination().unwrap(), a.poll_dissemination().unwrap());
        let mut b = Rib::new(2);
        assert_ne!((a.object_count(), a.digest()), (b.object_count(), b.digest()));
        b.apply_remote(oy); // reversed arrival order
        b.apply_remote(ox);
        assert_eq!((a.object_count(), a.digest()), (b.object_count(), b.digest()));
        // A new version moves the digest; syncing restores it.
        a.write_local("/x", "c", Bytes::from_static(b"3"));
        let o = a.poll_dissemination().unwrap();
        assert_ne!(a.digest(), b.digest());
        b.apply_remote(o);
        assert_eq!(a.digest(), b.digest());
        // Tombstones count too.
        a.delete_local("/y");
        assert_ne!(a.digest(), b.digest());
        b.apply_remote(a.poll_dissemination().unwrap());
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.object_count(), 2, "tombstone still stored");
    }

    #[test]
    fn object_encode_roundtrip() {
        let o = RibObject {
            name: "/dir/x".into(),
            class: "dir".into(),
            value: Bytes::from_static(b"\x01\x02"),
            version: 42,
            origin: 7,
            deleted: true,
        };
        assert_eq!(RibObject::decode(&o.encode()).unwrap(), o);
    }

    #[test]
    fn flooding_converges_on_a_line_of_members() {
        // a - b - c: a's write reaches c through b's re-flood decision.
        let mut ribs = vec![Rib::new(1), Rib::new(2), Rib::new(3)];
        ribs[0].write_local("/lsa/1", "lsa", Bytes::from_static(b"x"));
        // Simulate flooding: each dissemination is offered to neighbors,
        // re-offered while apply_remote returns true.
        let mut pending: Vec<(usize, RibObject)> = vec![];
        while let Some(o) = ribs[0].poll_dissemination() {
            pending.push((0, o));
        }
        while let Some((from, obj)) = pending.pop() {
            let neighbors: &[usize] = match from {
                0 => &[1],
                1 => &[0, 2],
                _ => &[1],
            };
            for &n in neighbors {
                if ribs[n].apply_remote(obj.clone()) {
                    pending.push((n, obj.clone()));
                }
            }
        }
        for rib in &ribs {
            assert_eq!(rib.get("/lsa/1").unwrap().value.as_ref(), b"x");
        }
    }

    #[test]
    fn subtree_of_splits_on_second_separator() {
        assert_eq!(subtree_of("/lsa/17"), "/lsa");
        assert_eq!(subtree_of("/dir/echo.h1"), "/dir");
        assert_eq!(subtree_of("/members/net.a/b"), "/members");
        assert_eq!(subtree_of("/flat"), "/flat");
        assert_eq!(subtree_of("bare"), "bare");
        assert_eq!(subtree_of(""), "");
    }

    #[test]
    fn digest_table_localizes_divergence_to_subtrees() {
        let mut a = Rib::new(1);
        a.write_local("/dir/x", "dir", Bytes::from_static(b"1"));
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"2"));
        let mut b = Rib::new(2);
        while let Some(o) = a.poll_dissemination() {
            b.apply_remote(o);
        }
        assert_eq!(a.digest_table(), b.digest_table());
        assert!(a.digest_table().mismatched(&b.digest_table()).is_empty());
        // A /lsa-only change must not implicate /dir.
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"3"));
        let mm = a.digest_table().mismatched(&b.digest_table());
        assert_eq!(mm, vec!["/lsa".to_string()]);
        // The totals still match the whole-RIB digest machinery.
        assert_eq!(a.digest_table().total_digest(), a.digest());
        assert_eq!(a.digest_table().total_count(), a.object_count() as u64);
        // A subtree present on only one side is a mismatch too.
        b.write_local("/blocks/9", "block", Bytes::new());
        let mm = a.digest_table().mismatched(&b.digest_table());
        assert_eq!(mm, vec!["/blocks".to_string(), "/lsa".to_string()]);
    }

    #[test]
    fn delta_for_sends_exactly_what_the_peer_lacks() {
        let mut a = Rib::new(1);
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"v1"));
        a.write_local("/lsa/2", "lsa", Bytes::from_static(b"v1"));
        a.write_local("/lsa/3", "lsa", Bytes::from_static(b"v1"));
        a.write_local("/dir/x", "dir", Bytes::new());
        let mut b = Rib::new(2);
        // b holds /lsa/2 at the same version and /lsa/3 newer.
        b.apply_remote(a.get("/lsa/2").unwrap().clone());
        let mut newer = a.get("/lsa/3").unwrap().clone();
        newer.version += 1;
        newer.origin = 2;
        b.apply_remote(newer);
        let (send, behind) = a.delta_for("/lsa", "", "", &b.summary("/lsa"));
        let names: Vec<_> = send.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["/lsa/1"], "equal version skipped, newer-at-peer skipped");
        assert!(behind, "the summary proves the peer has a newer /lsa/3");
        // Range bounds restrict the exchange.
        let (send, behind) = a.delta_for("/lsa", "/lsa/2", "", &b.summary("/lsa"));
        assert!(send.is_empty() && behind);
        let (send, behind) = a.delta_for("/lsa", "", "/lsa/2", &b.summary("/lsa"));
        assert_eq!(send.len(), 1);
        assert!(!behind, "peer's newer /lsa/3 is outside [., /lsa/2)");
        // An empty summary (fresh joiner) pulls the whole subtree.
        let (send, behind) = a.delta_for("/lsa", "", "", &[]);
        assert_eq!(send.len(), 3);
        assert!(!behind);
    }

    /// The watch hook fires on every path into the store — local
    /// writes, remote applies (silent or not), and deletions — and only
    /// for matching prefixes.
    #[test]
    fn watch_prefix_sees_every_store_path() {
        let mut a = Rib::new(1);
        a.watch_prefix("/lsa/");
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"x"));
        a.write_local("/dir/app", "dir", Bytes::from_static(b"7"));
        let remote = RibObject {
            name: "/lsa/9".into(),
            class: "lsa".into(),
            value: Bytes::from_static(b"y"),
            version: 3,
            origin: 9,
            deleted: false,
        };
        assert!(a.apply_remote_silent(remote.clone()));
        assert!(!a.apply_remote_silent(remote), "stale apply must not re-notify");
        a.delete_local("/lsa/1");
        let seen: Vec<(String, bool)> =
            std::iter::from_fn(|| a.poll_watch()).map(|o| (o.name, o.deleted)).collect();
        assert_eq!(
            seen,
            vec![
                ("/lsa/1".to_string(), false),
                ("/lsa/9".to_string(), false),
                ("/lsa/1".to_string(), true),
            ],
            "application order, deletions included, /dir ignored"
        );
    }

    /// A local-scope subtree leaves the replication surface: no digest
    /// advertisement, no snapshot copy, no delta serving, no
    /// dissemination of live writes — but tombstones still flood.
    #[test]
    fn local_subtree_leaves_the_replication_surface() {
        let mut a = Rib::new(1);
        a.set_local_subtree("/dir");
        assert!(a.is_local_subtree("/dir"));
        assert!(!a.is_local_subtree("/lsa"));
        a.write_local("/dir/echo", "dir", Bytes::from_static(b"\x01"));
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"x"));
        // Only the /lsa write disseminates.
        let out: Vec<RibObject> = std::iter::from_fn(|| a.poll_dissemination()).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "/lsa/1");
        // The owner still reads its own entry; events still fire.
        assert!(a.get("/dir/echo").is_some());
        assert_eq!(drain_events(&mut a).len(), 2);
        // Digest table, snapshot, summary, delta all exclude /dir.
        let table = a.digest_table();
        let subs: Vec<&str> = table.entries().iter().map(|e| e.0.as_str()).collect();
        assert_eq!(subs, vec!["/lsa"]);
        assert!(a.snapshot().iter().all(|o| !o.name.starts_with("/dir")));
        assert!(a.summary("/dir").is_empty());
        assert_eq!(a.delta_for("/dir", "", "", &[]), (vec![], false));
        // Tombstones still flood — remote caches must hear deletions.
        a.delete_local("/dir/echo");
        let tomb = a.poll_dissemination().expect("tombstone disseminates");
        assert!(tomb.deleted && tomb.name == "/dir/echo");
        assert!(a.poll_dissemination().is_none());
    }

    /// Two RIBs that agree on every replicated subtree compare in sync
    /// even when their owner-held /dir contents differ completely.
    #[test]
    fn scoped_ribs_compare_in_sync_despite_divergent_dir() {
        let mut a = Rib::new(1);
        let mut b = Rib::new(2);
        for r in [&mut a, &mut b] {
            r.set_local_subtree("/dir");
        }
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"x"));
        a.write_local("/dir/app-a", "dir", Bytes::from_static(b"\x01"));
        b.write_local("/dir/app-b", "dir", Bytes::from_static(b"\x02"));
        while let Some(o) = a.poll_dissemination() {
            b.apply_remote(o);
        }
        assert!(a.digest_table().mismatched(&b.digest_table()).is_empty());
    }

    /// Satellite fix: a watcher registered for a prefix that later
    /// becomes non-replicated is torn down — it must not fire on
    /// entries that are now owner-held/cache-only.
    #[test]
    fn watcher_torn_down_when_prefix_becomes_local_scope() {
        let mut a = Rib::new(1);
        a.watch_prefix("/dir/");
        a.watch_prefix("/lsa/");
        a.write_local("/dir/early", "dir", Bytes::from_static(b"\x01"));
        // The queued /dir change and the watcher itself both go.
        a.set_local_subtree("/dir");
        a.write_local("/dir/late", "dir", Bytes::from_static(b"\x02"));
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"x"));
        let seen: Vec<String> = std::iter::from_fn(|| a.poll_watch()).map(|o| o.name).collect();
        assert_eq!(seen, vec!["/lsa/1".to_string()], "no /dir change fires, queued or new");
        // Re-registering after the scope change is also inert for /dir.
        a.watch_prefix("/lsa/");
        a.unwatch_prefix("/lsa/");
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"y"));
        assert!(a.poll_watch().is_none(), "unwatch stops deliveries");
    }

    /// `unwatch_prefix` drops only the torn-down watcher's queued
    /// changes — entries still covered by another watcher survive.
    #[test]
    fn unwatch_keeps_changes_of_other_watchers() {
        let mut a = Rib::new(1);
        a.watch_prefix("/lsa/");
        a.watch_prefix("/blocks/");
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"x"));
        a.write_local("/blocks/1", "block", Bytes::from_static(b"b"));
        a.unwatch_prefix("/lsa/");
        let seen: Vec<String> = std::iter::from_fn(|| a.poll_watch()).map(|o| o.name).collect();
        assert_eq!(seen, vec!["/blocks/1".to_string()]);
    }

    /// Regression: with a linear fingerprint, the digest *difference* of
    /// a version bump was name-independent, so two objects each one
    /// version stale canceled in the XOR aggregate and two diverged RIBs
    /// compared equal — anti-entropy then never repaired them.
    #[test]
    fn correlated_version_skew_does_not_cancel_in_the_digest() {
        let mut a = Rib::new(1);
        a.write_local("/lsa/13", "lsa", Bytes::from_static(b"1"));
        a.write_local("/lsa/14", "lsa", Bytes::from_static(b"1"));
        let mut b = Rib::new(2);
        while let Some(o) = a.poll_dissemination() {
            b.apply_remote(o);
        }
        // a advances both objects by exactly one version; b hears neither.
        a.write_local("/lsa/13", "lsa", Bytes::from_static(b"22"));
        a.write_local("/lsa/14", "lsa", Bytes::from_static(b"22"));
        assert_ne!(a.digest(), b.digest(), "equal-count divergence must be visible");
        assert_eq!(a.digest_table().mismatched(&b.digest_table()), vec!["/lsa".to_string()]);
    }

    #[test]
    fn digest_table_roundtrips_on_the_wire() {
        let mut a = Rib::new(1);
        a.write_local("/dir/x", "dir", Bytes::from_static(b"1"));
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"2"));
        a.delete_local("/dir/x");
        let t = a.digest_table();
        let mut w = Writer::new();
        t.encode_into(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(DigestTable::decode_from(&mut r).unwrap(), t);
        assert!(r.expect_end().is_ok());
    }

    /// Run digest-driven delta sync between `a` (authoritative) and `b`
    /// until their tables agree, counting objects moved. Mirrors the
    /// ipcp exchange: per mismatched subtree, `b` summarizes, `a`
    /// answers with missing/newer objects.
    fn delta_sync(a: &mut Rib, b: &mut Rib) -> usize {
        let mut moved = 0;
        for _ in 0..64 {
            let mm = a.digest_table().mismatched(&b.digest_table());
            if mm.is_empty() {
                return moved;
            }
            for st in mm {
                let (objs, _) = a.delta_for(&st, "", "", &b.summary(&st));
                for o in objs {
                    moved += 1;
                    b.apply_remote(o);
                }
            }
        }
        panic!("delta sync did not converge");
    }

    proptest! {
        #[test]
        fn prop_object_roundtrip(
            name in "[a-z/]{0,24}",
            class in "[a-z]{0,8}",
            value in proptest::collection::vec(any::<u8>(), 0..64),
            version in any::<u64>(),
            origin in any::<u64>(),
            deleted in any::<bool>(),
        ) {
            let o = RibObject { name, class, value: Bytes::from(value), version, origin, deleted };
            prop_assert_eq!(RibObject::decode(&o.encode()).unwrap(), o);
        }

        #[test]
        fn prop_convergence_any_order(seed in any::<u64>()) {
            // Generate updates from 3 writers, apply to a reader in a
            // seed-shuffled order; final state must equal the max-version
            // object per name.
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut updates = vec![];
            for origin in 1u64..=3 {
                let mut w = Rib::new(origin);
                for v in 0..4 {
                    w.write_local("/obj", "c", Bytes::from(vec![origin as u8, v]));
                    while let Some(o) = w.poll_dissemination() { updates.push(o); }
                }
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            updates.shuffle(&mut rng);
            let mut r = Rib::new(9);
            for o in updates.clone() { r.apply_remote(o); }
            let winner = updates.iter().max_by_key(|o| (o.version, o.origin)).unwrap();
            prop_assert_eq!(&r.get("/obj").unwrap().value, &winner.value);
        }

        /// The tentpole invariant: syncing a diverged replica via
        /// digest-table + per-subtree deltas reaches a RIB byte-identical
        /// to one synced by a full snapshot resync — and moves only the
        /// objects that actually differed.
        #[test]
        fn prop_delta_sync_equals_full_resync(seed in any::<u64>()) {
            use rand::Rng;
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let subtrees = ["/dir/", "/lsa/", "/members/", "/blocks/"];
            // An authoritative RIB with random writes and deletes.
            let mut a = Rib::new(1);
            for _ in 0..40 {
                let name = format!(
                    "{}o{}",
                    subtrees[rng.gen_range(0..subtrees.len())],
                    rng.gen_range(0..12u32)
                );
                if rng.gen_range(0..5u32) == 0 {
                    a.delete_local(&name);
                } else {
                    a.write_local(&name, "c", Bytes::from(vec![rng.gen_range(0..=255u8) as u8]));
                }
            }
            let updates: Vec<RibObject> =
                std::iter::from_fn(|| a.poll_dissemination()).collect();
            // A replica that saw a random subset of the updates.
            let mut behind = Rib::new(2);
            let mut missed = 0usize;
            for o in &updates {
                if rng.gen_range(0..3u32) > 0 {
                    behind.apply_remote(o.clone());
                } else {
                    missed += 1;
                }
            }
            let mut full = Rib::new(3);
            for o in behind.snapshot() {
                full.apply_remote(o);
            }
            // Arm one: full snapshot resync (the pre-digest behavior).
            for o in a.snapshot() {
                full.apply_remote(o);
            }
            // Arm two: digest-driven per-subtree delta sync.
            let moved = delta_sync(&mut a, &mut behind);
            prop_assert_eq!(behind.snapshot(), full.snapshot(), "delta ≠ full resync");
            prop_assert_eq!(
                (behind.object_count(), behind.digest()),
                (a.object_count(), a.digest())
            );
            // O(missing), not O(RIB): only stale/absent versions moved.
            prop_assert!(moved <= missed, "moved {} > missed {}", moved, missed);
        }
    }
}
