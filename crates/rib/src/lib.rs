//! # rina-rib — the Resource Information Base and RIEP
//!
//! Every IPC process keeps a Resource Information Base: the shared state
//! that the paper's *IPC Management* task maintains via the Resource
//! Information Exchange Protocol (RIEP) — "application names, addresses,
//! and performance capabilities, used by various DIF coordination tasks,
//! such as routing, connection management, etc." (§3.1).
//!
//! The RIB here is a path-named object store with per-object versions and
//! single-writer semantics (each object is owned by the member that
//! originates it — e.g. `/lsa/<addr>` by the member at `<addr>`). RIEP is
//! realized as version-guarded flooding: an update is applied if strictly
//! newer and then re-disseminated, so updates reach every member of the DIF
//! exactly once per version regardless of topology. Deletions are
//! tombstones so they win over stale resurrections.
//!
//! The crate is sans-IO: [`Rib`] produces [`RibEvent`]s for the local IPC
//! process (routing recomputation, directory changes) and dissemination
//! items for the management task to forward; the `rina` crate moves them.

#![warn(missing_docs)]

use bytes::Bytes;
use rina_wire::codec::{Reader, Writer};
use rina_wire::WireError;
use std::collections::{BTreeMap, VecDeque};

/// One replicated object. Ordering of versions: `(version, origin)`
/// lexicographic, so concurrent writes by different members resolve
/// deterministically (higher origin wins ties — origins are DIF-internal
/// addresses, so this is arbitrary but consistent everywhere).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RibObject {
    /// Path-style instance name, e.g. `/dir/video-server`.
    pub name: String,
    /// Object class, e.g. `"dir"`, `"lsa"`.
    pub class: String,
    /// Encoded value (empty for tombstones).
    pub value: Bytes,
    /// Monotonic per-name version.
    pub version: u64,
    /// DIF-internal address of the writing member.
    pub origin: u64,
    /// True if this version deletes the object.
    pub deleted: bool,
}

impl RibObject {
    /// Encode for carriage inside a CDAP value.
    pub fn encode(&self) -> Bytes {
        let mut w =
            Writer::with_capacity(16 + self.name.len() + self.class.len() + self.value.len());
        w.string(&self.name)
            .string(&self.class)
            .bytes(&self.value)
            .varint(self.version)
            .varint(self.origin)
            .boolean(self.deleted);
        w.finish()
    }

    /// Decode from a CDAP value.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let name = r.string()?.to_string();
        let class = r.string()?.to_string();
        let value = Bytes::copy_from_slice(r.bytes()?);
        let version = r.varint()?;
        let origin = r.varint()?;
        let deleted = r.boolean()?;
        r.expect_end()?;
        Ok(RibObject { name, class, value, version, origin, deleted })
    }

    fn newer_than(&self, other: &RibObject) -> bool {
        (self.version, self.origin) > (other.version, other.origin)
    }
}

/// A change the local IPC process should react to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RibEvent {
    /// An object appeared or changed value.
    Upserted(RibObject),
    /// An object was deleted (tombstoned).
    Deleted(RibObject),
}

impl RibEvent {
    /// The object the event concerns.
    pub fn object(&self) -> &RibObject {
        match self {
            RibEvent::Upserted(o) | RibEvent::Deleted(o) => o,
        }
    }
}

/// Order-independent fingerprint of one object version, XOR-aggregated
/// into [`Rib::digest`]. Any version change changes it (versions are
/// monotonic per name), so two RIBs with equal `(object_count, digest)`
/// hold the same object versions with overwhelming probability — the
/// basis of hello-driven anti-entropy.
fn obj_fingerprint(o: &RibObject) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in o.name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= o.version.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= o.origin.rotate_left(32);
    if o.deleted {
        h = !h;
    }
    h
}

/// The Resource Information Base of one IPC process.
#[derive(Debug, Default)]
pub struct Rib {
    /// The member's own DIF-internal address (0 until enrolled).
    origin: u64,
    objects: BTreeMap<String, RibObject>,
    events: VecDeque<RibEvent>,
    /// Objects (new versions) to disseminate to neighbors.
    outbox: VecDeque<RibObject>,
    /// XOR of [`obj_fingerprint`] over every stored object (tombstones
    /// included), maintained incrementally.
    digest: u64,
}

impl Rib {
    /// An empty RIB for a member that will write with address `origin`.
    pub fn new(origin: u64) -> Self {
        Rib { origin, ..Default::default() }
    }

    /// Update the origin address (set when enrollment assigns one).
    pub fn set_origin(&mut self, origin: u64) {
        self.origin = origin;
    }

    /// This member's origin address.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// Write (create or update) an object authored locally. The new version
    /// supersedes any existing one and is queued for dissemination.
    pub fn write_local(&mut self, name: &str, class: &str, value: Bytes) {
        let version = self.objects.get(name).map(|o| o.version + 1).unwrap_or(1);
        let obj = RibObject {
            name: name.to_string(),
            class: class.to_string(),
            value,
            version,
            origin: self.origin,
            deleted: false,
        };
        self.store(obj.clone());
        self.events.push_back(RibEvent::Upserted(obj.clone()));
        self.outbox.push_back(obj);
    }

    /// Insert `obj`, keeping the incremental digest in sync.
    fn store(&mut self, obj: RibObject) {
        if let Some(old) = self.objects.get(&obj.name) {
            self.digest ^= obj_fingerprint(old);
        }
        self.digest ^= obj_fingerprint(&obj);
        self.objects.insert(obj.name.clone(), obj);
    }

    /// Tombstone an object authored locally. No-op if absent or already
    /// deleted.
    pub fn delete_local(&mut self, name: &str) {
        let Some(cur) = self.objects.get(name) else {
            return;
        };
        if cur.deleted {
            return;
        }
        let obj = RibObject {
            name: cur.name.clone(),
            class: cur.class.clone(),
            value: Bytes::new(),
            version: cur.version + 1,
            origin: self.origin,
            deleted: true,
        };
        self.store(obj.clone());
        self.events.push_back(RibEvent::Deleted(obj.clone()));
        self.outbox.push_back(obj);
    }

    /// Apply an object received from a peer. Returns `true` if it was newer
    /// than local state (caller should then re-flood it to other
    /// neighbors); `false` if stale or identical.
    pub fn apply_remote(&mut self, obj: RibObject) -> bool {
        match self.objects.get(&obj.name) {
            Some(cur) if !obj.newer_than(cur) => return false,
            _ => {}
        }
        let ev = if obj.deleted {
            RibEvent::Deleted(obj.clone())
        } else {
            RibEvent::Upserted(obj.clone())
        };
        self.store(obj);
        self.events.push_back(ev);
        true
    }

    /// Current value of a live (non-deleted) object.
    pub fn get(&self, name: &str) -> Option<&RibObject> {
        self.objects.get(name).filter(|o| !o.deleted)
    }

    /// All live objects whose names start with `prefix`, in name order.
    pub fn iter_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a RibObject> + 'a {
        self.objects
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .filter(|o| !o.deleted)
    }

    /// Every object including tombstones — the enrollment sync set a new
    /// member receives (§5.2).
    pub fn snapshot(&self) -> Vec<RibObject> {
        self.objects.values().cloned().collect()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.values().filter(|o| !o.deleted).count()
    }

    /// Number of stored objects, tombstones included (pairs with
    /// [`Rib::digest`] for anti-entropy comparisons).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Order-independent fingerprint of the stored object versions. Two
    /// RIBs with equal `(object_count, digest)` are in sync; a mismatch
    /// means someone missed an update.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// True when no live objects exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain pending local events.
    pub fn poll_event(&mut self) -> Option<RibEvent> {
        self.events.pop_front()
    }

    /// Drain objects queued for dissemination to neighbors.
    pub fn poll_dissemination(&mut self) -> Option<RibObject> {
        self.outbox.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain_events(r: &mut Rib) -> Vec<RibEvent> {
        std::iter::from_fn(|| r.poll_event()).collect()
    }

    #[test]
    fn local_write_and_get() {
        let mut rib = Rib::new(5);
        rib.write_local("/dir/app-a", "dir", Bytes::from_static(b"\x2a"));
        let o = rib.get("/dir/app-a").unwrap();
        assert_eq!(o.version, 1);
        assert_eq!(o.origin, 5);
        assert_eq!(o.value.as_ref(), b"\x2a");
        let evs = drain_events(&mut rib);
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0], RibEvent::Upserted(_)));
        assert!(rib.poll_dissemination().is_some());
        assert!(rib.poll_dissemination().is_none());
    }

    #[test]
    fn rewrite_bumps_version() {
        let mut rib = Rib::new(1);
        rib.write_local("/x", "c", Bytes::from_static(b"1"));
        rib.write_local("/x", "c", Bytes::from_static(b"2"));
        assert_eq!(rib.get("/x").unwrap().version, 2);
        assert_eq!(rib.get("/x").unwrap().value.as_ref(), b"2");
    }

    #[test]
    fn remote_newer_applies_and_floods_stale_does_not() {
        let mut a = Rib::new(1);
        let mut b = Rib::new(2);
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"v1"));
        let o1 = a.poll_dissemination().unwrap();
        assert!(b.apply_remote(o1.clone()));
        assert!(!b.apply_remote(o1.clone()), "duplicate is stale");
        a.write_local("/lsa/1", "lsa", Bytes::from_static(b"v2"));
        let o2 = a.poll_dissemination().unwrap();
        assert!(b.apply_remote(o2));
        assert!(!b.apply_remote(o1), "old version rejected");
        assert_eq!(b.get("/lsa/1").unwrap().value.as_ref(), b"v2");
    }

    #[test]
    fn delete_tombstones_and_wins() {
        let mut a = Rib::new(1);
        a.write_local("/dir/app", "dir", Bytes::from_static(b"7"));
        let create = a.poll_dissemination().unwrap();
        a.delete_local("/dir/app");
        let tomb = a.poll_dissemination().unwrap();
        assert!(a.get("/dir/app").is_none());
        assert_eq!(a.len(), 0);

        // A peer that sees the delete after the create ends deleted…
        let mut b = Rib::new(2);
        assert!(b.apply_remote(create.clone()));
        assert!(b.apply_remote(tomb.clone()));
        assert!(b.get("/dir/app").is_none());
        // …and a peer that sees them reordered also ends deleted.
        let mut c = Rib::new(3);
        assert!(c.apply_remote(tomb));
        assert!(!c.apply_remote(create));
        assert!(c.get("/dir/app").is_none());
    }

    #[test]
    fn delete_absent_is_noop() {
        let mut a = Rib::new(1);
        a.delete_local("/nope");
        assert!(drain_events(&mut a).is_empty());
        assert!(a.poll_dissemination().is_none());
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two members write the same name at the same version.
        let mut a = Rib::new(1);
        let mut b = Rib::new(9);
        a.write_local("/contested", "c", Bytes::from_static(b"low"));
        b.write_local("/contested", "c", Bytes::from_static(b"high"));
        let oa = a.poll_dissemination().unwrap();
        let ob = b.poll_dissemination().unwrap();
        // Cross-apply in both orders: both converge on origin 9's value.
        let mut x = Rib::new(50);
        assert!(x.apply_remote(oa.clone()));
        assert!(x.apply_remote(ob.clone()));
        let mut y = Rib::new(51);
        assert!(y.apply_remote(ob));
        assert!(!y.apply_remote(oa));
        assert_eq!(x.get("/contested").unwrap().value, y.get("/contested").unwrap().value);
        assert_eq!(x.get("/contested").unwrap().value.as_ref(), b"high");
    }

    #[test]
    fn prefix_iteration_ordered_and_filtered() {
        let mut rib = Rib::new(1);
        rib.write_local("/dir/b", "dir", Bytes::new());
        rib.write_local("/dir/a", "dir", Bytes::new());
        rib.write_local("/lsa/1", "lsa", Bytes::new());
        rib.write_local("/dir/c", "dir", Bytes::new());
        rib.delete_local("/dir/b");
        let names: Vec<_> = rib.iter_prefix("/dir/").map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["/dir/a", "/dir/c"]);
    }

    #[test]
    fn snapshot_includes_tombstones() {
        let mut rib = Rib::new(1);
        rib.write_local("/a", "c", Bytes::new());
        rib.delete_local("/a");
        rib.write_local("/b", "c", Bytes::new());
        let snap = rib.snapshot();
        assert_eq!(snap.len(), 2);
        // A fresh member applying the snapshot converges.
        let mut n = Rib::new(7);
        for o in snap {
            n.apply_remote(o);
        }
        assert!(n.get("/a").is_none());
        assert!(n.get("/b").is_some());
    }

    #[test]
    fn digest_tracks_state_not_history() {
        // Two RIBs reaching the same object versions by different routes
        // end with the same digest; divergent state differs.
        let mut a = Rib::new(1);
        a.write_local("/x", "c", Bytes::from_static(b"1"));
        a.write_local("/y", "c", Bytes::from_static(b"2"));
        let (ox, oy) = (a.poll_dissemination().unwrap(), a.poll_dissemination().unwrap());
        let mut b = Rib::new(2);
        assert_ne!((a.object_count(), a.digest()), (b.object_count(), b.digest()));
        b.apply_remote(oy); // reversed arrival order
        b.apply_remote(ox);
        assert_eq!((a.object_count(), a.digest()), (b.object_count(), b.digest()));
        // A new version moves the digest; syncing restores it.
        a.write_local("/x", "c", Bytes::from_static(b"3"));
        let o = a.poll_dissemination().unwrap();
        assert_ne!(a.digest(), b.digest());
        b.apply_remote(o);
        assert_eq!(a.digest(), b.digest());
        // Tombstones count too.
        a.delete_local("/y");
        assert_ne!(a.digest(), b.digest());
        b.apply_remote(a.poll_dissemination().unwrap());
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.object_count(), 2, "tombstone still stored");
    }

    #[test]
    fn object_encode_roundtrip() {
        let o = RibObject {
            name: "/dir/x".into(),
            class: "dir".into(),
            value: Bytes::from_static(b"\x01\x02"),
            version: 42,
            origin: 7,
            deleted: true,
        };
        assert_eq!(RibObject::decode(&o.encode()).unwrap(), o);
    }

    #[test]
    fn flooding_converges_on_a_line_of_members() {
        // a - b - c: a's write reaches c through b's re-flood decision.
        let mut ribs = vec![Rib::new(1), Rib::new(2), Rib::new(3)];
        ribs[0].write_local("/lsa/1", "lsa", Bytes::from_static(b"x"));
        // Simulate flooding: each dissemination is offered to neighbors,
        // re-offered while apply_remote returns true.
        let mut pending: Vec<(usize, RibObject)> = vec![];
        while let Some(o) = ribs[0].poll_dissemination() {
            pending.push((0, o));
        }
        while let Some((from, obj)) = pending.pop() {
            let neighbors: &[usize] = match from {
                0 => &[1],
                1 => &[0, 2],
                _ => &[1],
            };
            for &n in neighbors {
                if ribs[n].apply_remote(obj.clone()) {
                    pending.push((n, obj.clone()));
                }
            }
        }
        for rib in &ribs {
            assert_eq!(rib.get("/lsa/1").unwrap().value.as_ref(), b"x");
        }
    }

    proptest! {
        #[test]
        fn prop_object_roundtrip(
            name in "[a-z/]{0,24}",
            class in "[a-z]{0,8}",
            value in proptest::collection::vec(any::<u8>(), 0..64),
            version in any::<u64>(),
            origin in any::<u64>(),
            deleted in any::<bool>(),
        ) {
            let o = RibObject { name, class, value: Bytes::from(value), version, origin, deleted };
            prop_assert_eq!(RibObject::decode(&o.encode()).unwrap(), o);
        }

        #[test]
        fn prop_convergence_any_order(seed in any::<u64>()) {
            // Generate updates from 3 writers, apply to a reader in a
            // seed-shuffled order; final state must equal the max-version
            // object per name.
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut updates = vec![];
            for origin in 1u64..=3 {
                let mut w = Rib::new(origin);
                for v in 0..4 {
                    w.write_local("/obj", "c", Bytes::from(vec![origin as u8, v]));
                    while let Some(o) = w.poll_dissemination() { updates.push(o); }
                }
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            updates.shuffle(&mut rng);
            let mut r = Rib::new(9);
            for o in updates.clone() { r.apply_remote(o); }
            let winner = updates.iter().max_by_key(|o| (o.version, o.origin)).unwrap();
            prop_assert_eq!(&r.get("/obj").unwrap().value, &winner.value);
        }
    }
}
