//! Property tests for replication scopes (offline `proptest` shim: 64
//! deterministic cases per property).
//!
//! A subtree marked local (owner-held) must vanish from every
//! replication surface — snapshot, digest table, summaries, deltas, the
//! dissemination outbox — while tombstones still flood (they are the
//! cache-invalidation channel) and the replicated subtrees stay
//! byte-identical to an unscoped peer's view. Whatever divergent local
//! `/dir` content two members hold, their anti-entropy conversation
//! must neither mention it nor be perturbed by it.

use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;
use rina_rib::{Rib, RibObject};

/// One generated mutation against a RIB.
#[derive(Clone, Debug)]
struct Op {
    subtree: u8,
    slot: u8,
    value: Vec<u8>,
    delete: bool,
}

const SUBTREES: [&str; 3] = ["/dir", "/lsa", "/blocks"];

fn name_of(op: &Op) -> String {
    format!("{}/obj{}", SUBTREES[op.subtree as usize % 3], op.slot % 5)
}

fn apply(rib: &mut Rib, op: &Op) {
    let name = name_of(op);
    if op.delete {
        rib.delete_local(&name);
    } else {
        rib.write_local(&name, "t", Bytes::from(op.value.clone()));
    }
}

/// Custom strategy (the offline proptest shim has no `prop_map`):
/// draws one [`Op`] directly from the case RNG.
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn sample(&self, rng: &mut SmallRng) -> Op {
        let len = rng.gen_range(0usize..16);
        Op {
            subtree: rng.gen(),
            slot: rng.gen(),
            value: (0..len).map(|_| rng.gen()).collect(),
            delete: rng.gen(),
        }
    }
}

fn op_strategy() -> OpStrategy {
    OpStrategy
}

fn drain_outbox(rib: &mut Rib) -> Vec<RibObject> {
    std::iter::from_fn(|| rib.poll_dissemination()).collect()
}

/// Run digest-table anti-entropy between two ribs to quiescence, the
/// way peers do over hellos: compare tables, exchange summaries, pull
/// deltas, repeat. Returns the number of rounds taken.
fn sync(a: &mut Rib, b: &mut Rib) -> usize {
    for round in 0..32 {
        let (ta, tb) = (a.digest_table(), b.digest_table());
        let mismatch = ta.mismatched(&tb);
        if mismatch.is_empty() {
            return round;
        }
        for s in mismatch {
            let (objs, _) = a.delta_for(&s, "", "", &b.summary(&s));
            for o in objs {
                b.apply_remote_silent(o);
            }
            let (objs, _) = b.delta_for(&s, "", "", &a.summary(&s));
            for o in objs {
                a.apply_remote_silent(o);
            }
        }
    }
    panic!("anti-entropy failed to converge in 32 rounds");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever mutation sequence hits a scoped RIB, live `/dir` state
    /// never reaches any replication surface: not the snapshot, not the
    /// digest table, not summaries, not deltas against an empty peer,
    /// not the dissemination outbox. Deletions still go out — they are
    /// the invalidation channel.
    #[test]
    fn local_subtree_never_reaches_a_replication_surface(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut rib = Rib::new(7);
        rib.set_local_subtree("/dir");
        for op in &ops {
            apply(&mut rib, op);
        }
        prop_assert!(rib.snapshot().iter().all(|o| !o.name.starts_with("/dir/")));
        prop_assert!(rib.digest_table().entries().iter().all(|e| e.0 != "/dir"));
        prop_assert!(rib.summary("/dir").is_empty());
        let (objs, behind) = rib.delta_for("/dir", "", "", &[]);
        prop_assert!(objs.is_empty() && !behind, "owner-held state served by anti-entropy");
        let out = drain_outbox(&mut rib);
        prop_assert!(
            out.iter().all(|o| !o.name.starts_with("/dir/") || o.deleted),
            "a live /dir object left through the outbox"
        );
        // The RIB itself still holds the owner's live entries.
        let live_dir_ops =
            ops.iter().any(|o| SUBTREES[o.subtree as usize % 3] == "/dir");
        if live_dir_ops {
            // At least the names touched exist (live or tombstoned) locally.
            prop_assert!(rib.iter_all().count() >= rib.snapshot().len());
        }
    }

    /// Two scoped members with arbitrarily divergent local `/dir`
    /// content but identical replicated history are indistinguishable
    /// on the wire: equal digest tables, no mismatched subtree, empty
    /// deltas in both directions — byte-identical on every
    /// fully-replicated subtree.
    #[test]
    fn divergent_local_dir_is_invisible_to_anti_entropy(
        shared in proptest::collection::vec(op_strategy(), 0..24),
        dir_a in proptest::collection::vec(op_strategy(), 0..12),
        dir_b in proptest::collection::vec(op_strategy(), 0..12),
    ) {
        let mut a = Rib::new(1);
        let mut b = Rib::new(2);
        a.set_local_subtree("/dir");
        b.set_local_subtree("/dir");
        // Identical replicated history lands as remote state on both.
        let mut scribe = Rib::new(9);
        for op in shared.iter().filter(|o| SUBTREES[o.subtree as usize % 3] != "/dir") {
            apply(&mut scribe, op);
        }
        for o in scribe.iter_all().cloned().collect::<Vec<_>>() {
            a.apply_remote_silent(o.clone());
            b.apply_remote_silent(o);
        }
        // Divergent owner-held /dir content on each side.
        for op in dir_a.iter().filter(|o| SUBTREES[o.subtree as usize % 3] == "/dir") {
            apply(&mut a, op);
        }
        for op in dir_b.iter().filter(|o| SUBTREES[o.subtree as usize % 3] == "/dir") {
            apply(&mut b, op);
        }
        let (ta, tb) = (a.digest_table(), b.digest_table());
        prop_assert_eq!(ta.mismatched(&tb), Vec::<String>::new());
        prop_assert_eq!(ta.total_digest(), tb.total_digest());
        for s in ["/lsa", "/blocks"] {
            let (objs, behind) = a.delta_for(s, "", "", &b.summary(s));
            prop_assert!(objs.is_empty() && !behind, "spurious delta on {s}");
        }
    }

    /// Anti-entropy between two scoped members converges on the
    /// replicated subtrees and never leaks a live `/dir` entry across:
    /// after sync, replicated snapshots are byte-identical while each
    /// member still holds exactly its own directory.
    #[test]
    fn sync_converges_replicated_state_without_leaking_dir(
        ops_a in proptest::collection::vec(op_strategy(), 1..24),
        ops_b in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        let mut a = Rib::new(1);
        let mut b = Rib::new(2);
        a.set_local_subtree("/dir");
        b.set_local_subtree("/dir");
        for op in &ops_a {
            apply(&mut a, op);
        }
        for op in &ops_b {
            apply(&mut b, op);
        }
        let dir_a: Vec<RibObject> =
            a.iter_all().filter(|o| o.name.starts_with("/dir/")).cloned().collect();
        let dir_b: Vec<RibObject> =
            b.iter_all().filter(|o| o.name.starts_with("/dir/")).cloned().collect();
        sync(&mut a, &mut b);
        prop_assert_eq!(a.snapshot(), b.snapshot(), "replicated views diverge after sync");
        let dir_a_after: Vec<RibObject> =
            a.iter_all().filter(|o| o.name.starts_with("/dir/")).cloned().collect();
        let dir_b_after: Vec<RibObject> =
            b.iter_all().filter(|o| o.name.starts_with("/dir/")).cloned().collect();
        prop_assert_eq!(dir_a, dir_a_after, "sync perturbed a's owner-held directory");
        prop_assert_eq!(dir_b, dir_b_after, "sync perturbed b's owner-held directory");
    }

    /// Marking a subtree local tears its watchers down: after the scope
    /// change, no watch event for that subtree is ever delivered again,
    /// while watchers on other prefixes keep working.
    #[test]
    fn scope_change_tears_down_watchers(
        pre in proptest::collection::vec(op_strategy(), 0..12),
        post in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let mut rib = Rib::new(3);
        rib.watch_prefix("/dir/");
        rib.watch_prefix("/lsa/");
        for op in &pre {
            apply(&mut rib, op);
        }
        while rib.poll_watch().is_some() {}
        rib.set_local_subtree("/dir");
        for op in &post {
            apply(&mut rib, op);
        }
        let mut lsa_seen = 0usize;
        while let Some(o) = rib.poll_watch() {
            prop_assert!(!o.name.starts_with("/dir/"), "torn-down watcher fired: {}", o.name);
            lsa_seen += 1;
        }
        let lsa_written = post
            .iter()
            .filter(|o| !o.delete && SUBTREES[o.subtree as usize % 3] == "/lsa")
            .count();
        prop_assert!(
            lsa_seen >= lsa_written.min(1),
            "the surviving /lsa watcher went silent"
        );
    }
}
