//! Congestion-window state for one sender.

use crate::params::CongestionCtrl;

/// AIMD/slow-start congestion state, measured in PDUs.
#[derive(Clone, Debug)]
pub(crate) struct Cong {
    kind: CongestionCtrl,
    cwnd: f64,
    ssthresh: f64,
}

impl Cong {
    pub fn new(kind: CongestionCtrl) -> Self {
        match kind {
            CongestionCtrl::None => Cong { kind, cwnd: 0.0, ssthresh: 0.0 },
            CongestionCtrl::Aimd { initial_window, ssthresh } => {
                Cong { kind, cwnd: initial_window.max(1.0), ssthresh }
            }
        }
    }

    /// Current window in PDUs (effectively unlimited when disabled).
    pub fn window(&self) -> u64 {
        match self.kind {
            CongestionCtrl::None => u64::MAX / 4,
            CongestionCtrl::Aimd { .. } => self.cwnd.max(1.0) as u64,
        }
    }

    /// `n` PDUs newly acknowledged.
    pub fn on_ack(&mut self, n: u64) {
        if let CongestionCtrl::Aimd { .. } = self.kind {
            for _ in 0..n {
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
            }
        }
    }

    /// A retransmission timeout fired: multiplicative decrease.
    pub fn on_loss(&mut self) {
        if let CongestionCtrl::Aimd { .. } = self.kind {
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = 1.0;
        }
    }

    /// A fast-retransmit (nack) happened: halve, do not collapse.
    pub fn on_fast_retransmit(&mut self) {
        if let CongestionCtrl::Aimd { .. } = self.kind {
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unbounded() {
        let mut c = Cong::new(CongestionCtrl::None);
        assert!(c.window() > 1 << 50);
        c.on_ack(10);
        c.on_loss();
        assert!(c.window() > 1 << 50);
    }

    #[test]
    fn slow_start_doubles_then_linear() {
        let mut c = Cong::new(CongestionCtrl::Aimd { initial_window: 2.0, ssthresh: 8.0 });
        assert_eq!(c.window(), 2);
        c.on_ack(2); // 4
        assert_eq!(c.window(), 4);
        c.on_ack(4); // 8 -> at ssthresh
        assert_eq!(c.window(), 8);
        c.on_ack(8); // CA: + ~1/cwnd per ack => just under 9
        assert_eq!(c.window(), 8);
        c.on_ack(2); // crosses 9
        assert_eq!(c.window(), 9);
    }

    #[test]
    fn loss_collapses_fast_rtx_halves() {
        let mut c = Cong::new(CongestionCtrl::Aimd { initial_window: 16.0, ssthresh: 4.0 });
        c.on_fast_retransmit();
        assert_eq!(c.window(), 8);
        c.on_loss();
        assert_eq!(c.window(), 1);
    }
}
