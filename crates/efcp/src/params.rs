//! Connection parameters and policies.
//!
//! The paper's central mechanism/policy split (§8): EFCP is one *mechanism*
//! whose behaviour is tuned per DIF by *policies*. A [`ConnParams`] value is
//! the policy set for one connection; DIFs derive it from the QoS cube a
//! flow was allocated against.

/// Congestion-control policy applied on top of receiver flow control.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CongestionCtrl {
    /// No congestion window; send up to the receiver's credit.
    None,
    /// Additive-increase/multiplicative-decrease with slow start, in PDUs.
    Aimd {
        /// Initial congestion window, in PDUs.
        initial_window: f64,
        /// Slow-start threshold, in PDUs.
        ssthresh: f64,
    },
}

impl CongestionCtrl {
    /// The conventional AIMD configuration.
    pub fn aimd() -> Self {
        CongestionCtrl::Aimd { initial_window: 2.0, ssthresh: 64.0 }
    }
}

/// Policy set for one EFCP connection. All times are virtual nanoseconds so
/// this crate stays independent of any particular clock.
#[derive(Clone, Debug)]
pub struct ConnParams {
    /// Retransmit lost PDUs until acknowledged (DTCP retransmission).
    pub reliable: bool,
    /// Deliver SDUs to the user in sequence order.
    pub ordered: bool,
    /// Window flow control driven by receiver credit.
    pub flow_control: bool,
    /// Receiver credit window, in PDUs ahead of the next expected seq.
    pub credit_window: u64,
    /// Largest PDU payload; larger SDUs are fragmented.
    pub max_pdu_payload: usize,
    /// Initial retransmission timeout, nanoseconds.
    pub rtx_timeout_ns: u64,
    /// Ceiling on the backed-off retransmission timeout, nanoseconds.
    /// Exponential backoff doubles the RTO per expiry; without a cap,
    /// ten expiries on one PDU (long lossy paths) push the next attempt
    /// minutes out. 0 = uncapped.
    pub rtx_max_timeout_ns: u64,
    /// Give up after this many retransmissions of one PDU.
    pub max_rtx: u32,
    /// Congestion control policy.
    pub congestion: CongestionCtrl,
    /// Delay before sending a pure ack, nanoseconds (0 = ack immediately).
    pub ack_delay_ns: u64,
}

impl ConnParams {
    /// A reliable, ordered, flow-controlled connection — the default for
    /// management flows and file-transfer-like QoS cubes.
    pub fn reliable() -> Self {
        ConnParams {
            reliable: true,
            ordered: true,
            flow_control: true,
            credit_window: 256,
            max_pdu_payload: 1400,
            rtx_timeout_ns: 200_000_000,       // 200 ms
            rtx_max_timeout_ns: 5_000_000_000, // 5 s RTO ceiling
            max_rtx: 12,
            congestion: CongestionCtrl::aimd(),
            ack_delay_ns: 0,
        }
    }

    /// An unreliable, unordered datagram connection — telemetry-like cubes.
    pub fn unreliable() -> Self {
        ConnParams {
            reliable: false,
            ordered: false,
            flow_control: false,
            credit_window: u64::MAX / 4,
            max_pdu_payload: 1400,
            rtx_timeout_ns: 0,
            rtx_max_timeout_ns: 0,
            max_rtx: 0,
            congestion: CongestionCtrl::None,
            ack_delay_ns: 0,
        }
    }

    /// Tuned for a short-haul lossy segment (the paper's Figure 3 inner
    /// DIF): aggressive local retransmission, small window, and no
    /// congestion window — ARQ over a dedicated segment must not collapse
    /// its rate on channel loss (that is exactly the confusion of loss
    /// signals the scoped layer exists to absorb).
    pub fn short_haul_lossy() -> Self {
        ConnParams {
            rtx_timeout_ns: 15_000_000, // 15 ms: feedback loop is short
            credit_window: 64,
            congestion: CongestionCtrl::None,
            ..ConnParams::reliable()
        }
    }

    /// Builder-style override of the retransmission timeout.
    pub fn with_rtx_timeout_ns(mut self, ns: u64) -> Self {
        self.rtx_timeout_ns = ns;
        self
    }

    /// Builder-style override of the max payload size.
    pub fn with_max_pdu_payload(mut self, n: usize) -> Self {
        assert!(n > 0, "payload size must be positive");
        self.max_pdu_payload = n;
        self
    }

    /// Builder-style override of the receiver credit window (PDUs).
    pub fn with_credit_window(mut self, w: u64) -> Self {
        self.credit_window = w;
        self
    }

    /// Builder-style override of the congestion policy.
    pub fn with_congestion(mut self, c: CongestionCtrl) -> Self {
        self.congestion = c;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_coherent() {
        let r = ConnParams::reliable();
        assert!(r.reliable && r.ordered && r.flow_control);
        let u = ConnParams::unreliable();
        assert!(!u.reliable && !u.ordered && !u.flow_control);
        let s = ConnParams::short_haul_lossy();
        assert!(s.reliable);
        assert!(s.rtx_timeout_ns < r.rtx_timeout_ns);
    }

    #[test]
    #[should_panic]
    fn zero_payload_rejected() {
        let _ = ConnParams::reliable().with_max_pdu_payload(0);
    }
}
