//! The EFCP connection state machine (DTP + DTCP), sans-IO.
//!
//! A [`Connection`] is one end of an EFCP connection. It never does IO or
//! reads a clock: the caller feeds it SDUs ([`Connection::send_sdu`]),
//! incoming PDUs ([`Connection::on_pdu`]) and time ([`Connection::on_timeout`]),
//! and drains outgoing PDUs ([`Connection::poll_transmit`]) and delivered
//! SDUs ([`Connection::poll_deliver`]). This mirrors the paper's split of an
//! IPC process into data-transfer and transfer-control tasks coupled only
//! through shared per-flow state (§4).

use crate::cong::Cong;
use crate::params::ConnParams;
use bytes::Bytes;
use rina_wire::efcp::{FLAG_DRF, FLAG_FIRST, FLAG_MORE};
use rina_wire::{Addr, CepId, CtrlKind, CtrlPdu, DataPdu, Pdu, SeqNum};
use std::collections::{BTreeMap, VecDeque};

/// Addressing of one connection within its DIF. EFCP fills these into every
/// PDU it emits; the relaying task routes on `remote_addr`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnId {
    /// This end's DIF-internal address.
    pub local_addr: Addr,
    /// Peer's DIF-internal address.
    pub remote_addr: Addr,
    /// This end's connection endpoint id.
    pub local_cep: CepId,
    /// Peer's connection endpoint id.
    pub remote_cep: CepId,
    /// QoS cube the flow belongs to.
    pub qos_id: u8,
}

/// Counters kept by a connection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// SDUs accepted from the local user.
    pub sdus_sent: u64,
    /// Data PDUs transmitted (including retransmissions).
    pub pdus_sent: u64,
    /// Data PDUs retransmitted.
    pub retransmissions: u64,
    /// Retransmission timer expiries.
    pub timeouts: u64,
    /// SDUs delivered to the local user.
    pub sdus_delivered: u64,
    /// Payload bytes delivered to the local user.
    pub bytes_delivered: u64,
    /// Duplicate data PDUs received and discarded.
    pub dup_pdus: u64,
    /// PDUs received out of order and buffered.
    pub ooo_pdus: u64,
    /// Control PDUs sent.
    pub acks_sent: u64,
    /// SDUs (or fragments) dropped by the receiver in unreliable modes.
    pub rcv_dropped: u64,
    /// Window halvings triggered by local RMT pressure
    /// (`DifConfig::cong_from_rmt`), at most one per RTT.
    pub cong_backoffs: u64,
}

#[derive(Clone, Debug)]
struct RtxEntry {
    flags: u8,
    payload: Bytes,
    retries: u32,
}

/// Why [`Connection::send_sdu`] refused an SDU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendSduError {
    /// The connection has failed (max retransmissions exceeded).
    ConnectionFailed,
    /// The send queue is full (backpressure to the user).
    Backpressured,
}

impl std::fmt::Display for SendSduError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendSduError::ConnectionFailed => write!(f, "connection failed"),
            SendSduError::Backpressured => write!(f, "send queue full"),
        }
    }
}
impl std::error::Error for SendSduError {}

/// Maximum fragments queued before `send_sdu` applies backpressure.
const SENDQ_LIMIT: usize = 4096;

/// One end of an EFCP connection.
#[derive(Debug)]
pub struct Connection {
    id: ConnId,
    p: ConnParams,
    cong: Cong,

    // --- sender ---
    next_seq: SeqNum,
    snd_una: SeqNum,
    credit_rwe: SeqNum,
    sendq: VecDeque<(u8, Bytes)>,
    rtxq: BTreeMap<SeqNum, RtxEntry>,
    rtx_deadline: Option<u64>,
    rtx_backoff: u32,
    /// Loss-recovery frontier: after an RTO, every ack below this point
    /// immediately retransmits the new head (go-back-N pacing at one PDU
    /// per RTT), instead of waiting out an RTO per lost PDU. Essential
    /// after burst loss, e.g. a path failure killing a whole window.
    recover_until: Option<SeqNum>,
    drf_pending: bool,
    failed: bool,

    // --- receiver ---
    rcv_next: SeqNum,
    ooo: BTreeMap<SeqNum, (u8, Bytes)>,
    reasm: Vec<Bytes>,
    /// Unreliable mode: currently discarding fragments of a lost SDU.
    dropping_sdu: bool,
    deliver_q: VecDeque<Bytes>,
    ack_pending: bool,
    ack_deadline: Option<u64>,
    last_nacked: Option<SeqNum>,

    outq: VecDeque<Pdu>,
    stats: ConnStats,
    /// Last time local RMT pressure halved the window (once-per-RTT guard).
    last_cong_ns: Option<u64>,
}

impl Connection {
    /// Create a connection endpoint with the given addressing and policies.
    pub fn new(id: ConnId, params: ConnParams) -> Self {
        let credit_rwe = if params.flow_control { params.credit_window } else { SeqNum::MAX / 4 };
        Connection {
            id,
            cong: Cong::new(params.congestion),
            p: params,
            next_seq: 0,
            snd_una: 0,
            credit_rwe,
            sendq: VecDeque::new(),
            rtxq: BTreeMap::new(),
            rtx_deadline: None,
            rtx_backoff: 0,
            recover_until: None,
            drf_pending: true,
            failed: false,
            rcv_next: 0,
            ooo: BTreeMap::new(),
            reasm: Vec::new(),
            dropping_sdu: false,
            deliver_q: VecDeque::new(),
            ack_pending: false,
            ack_deadline: None,
            last_nacked: None,
            outq: VecDeque::new(),
            stats: ConnStats::default(),
            last_cong_ns: None,
        }
    }

    /// The connection's addressing.
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// Local RMT pressure signal: a PDU of this flow was pushed out of (or
    /// tail-dropped at) a queue on this node. Halve the window like a fast
    /// retransmit would — the loss is certain, no need to wait for the
    /// retransmission timer — but at most once per RTT so a burst of drops
    /// from a single overload event does not collapse the window to nothing.
    /// With no RTT estimator on the connection, the retransmission timeout
    /// stands in for the RTT.
    pub fn on_local_congestion(&mut self, now_ns: u64) {
        if let Some(last) = self.last_cong_ns {
            if now_ns.saturating_sub(last) < self.p.rtx_timeout_ns {
                return;
            }
        }
        self.last_cong_ns = Some(now_ns);
        self.cong.on_fast_retransmit();
        self.stats.cong_backoffs += 1;
    }

    /// Rebind the peer address — the late binding that makes multihoming
    /// and mobility cheap (§6.3/§6.4): in-flight state is untouched, future
    /// PDUs are simply addressed to the node's current address.
    pub fn set_remote_addr(&mut self, addr: Addr) {
        self.id.remote_addr = addr;
    }

    /// Counters.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// True once `max_rtx` retransmissions of one PDU have failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// True when nothing is queued, unacked, or pending delivery.
    pub fn is_idle(&self) -> bool {
        self.sendq.is_empty()
            && self.rtxq.is_empty()
            && self.outq.is_empty()
            && self.deliver_q.is_empty()
            && !self.ack_pending
    }

    /// Number of PDUs in flight (sent, not yet acknowledged).
    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.snd_una
    }

    /// Accept an SDU from the user, fragmenting to the PDU payload limit.
    pub fn send_sdu(&mut self, data: Bytes, now_ns: u64) -> Result<(), SendSduError> {
        if self.failed {
            return Err(SendSduError::ConnectionFailed);
        }
        if self.sendq.len() >= SENDQ_LIMIT {
            return Err(SendSduError::Backpressured);
        }
        self.stats.sdus_sent += 1;
        let mtu = self.p.max_pdu_payload;
        if data.is_empty() {
            self.sendq.push_back((FLAG_FIRST, data));
        } else {
            let mut off = 0;
            while off < data.len() {
                let end = (off + mtu).min(data.len());
                let mut flags = if end < data.len() { FLAG_MORE } else { 0 };
                if off == 0 {
                    flags |= FLAG_FIRST;
                }
                self.sendq.push_back((flags, data.slice(off..end)));
                off = end;
            }
        }
        self.pump(now_ns);
        Ok(())
    }

    /// Sender window limit: receiver credit AND congestion window.
    fn send_limit(&self) -> SeqNum {
        let cong_limit = self.snd_una.saturating_add(self.cong.window());
        self.credit_rwe.min(cong_limit)
    }

    /// Move fragments from the send queue into PDUs while window allows.
    fn pump(&mut self, now_ns: u64) {
        while self.next_seq < self.send_limit() {
            let Some((mut flags, payload)) = self.sendq.pop_front() else { break };
            if self.drf_pending {
                flags |= FLAG_DRF;
                self.drf_pending = false;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            if self.p.reliable {
                self.rtxq.insert(seq, RtxEntry { flags, payload: payload.clone(), retries: 0 });
                if self.rtx_deadline.is_none() {
                    self.rtx_deadline = Some(now_ns + self.p.rtx_timeout_ns);
                }
            }
            self.stats.pdus_sent += 1;
            self.outq.push_back(Pdu::Data(self.data_pdu(seq, flags, payload)));
        }
    }

    fn data_pdu(&self, seq: SeqNum, flags: u8, payload: Bytes) -> DataPdu {
        DataPdu {
            dest_addr: self.id.remote_addr,
            src_addr: self.id.local_addr,
            qos_id: self.id.qos_id,
            dest_cep: self.id.remote_cep,
            src_cep: self.id.local_cep,
            seq,
            flags,
            ttl: rina_wire::efcp::DEFAULT_TTL,
            payload,
        }
    }

    fn ctrl_pdu(&self, kind: CtrlKind) -> CtrlPdu {
        CtrlPdu {
            dest_addr: self.id.remote_addr,
            src_addr: self.id.local_addr,
            qos_id: self.id.qos_id,
            dest_cep: self.id.remote_cep,
            src_cep: self.id.local_cep,
            ttl: rina_wire::efcp::DEFAULT_TTL,
            kind,
        }
    }

    /// Feed one incoming PDU addressed to this connection.
    pub fn on_pdu(&mut self, pdu: &Pdu, now_ns: u64) {
        match pdu {
            Pdu::Data(d) => self.on_data(d, now_ns),
            Pdu::Ctrl(c) => self.on_ctrl(c.kind, now_ns),
            Pdu::Mgmt(_) => { /* management is handled above EFCP */ }
        }
    }

    fn on_data(&mut self, d: &DataPdu, now_ns: u64) {
        if !self.p.reliable {
            self.on_data_unreliable(d);
            return;
        }
        if d.seq < self.rcv_next {
            // Duplicate: re-ack so the sender advances.
            self.stats.dup_pdus += 1;
            self.schedule_ack(now_ns);
            return;
        }
        if d.seq > self.rcv_next {
            self.stats.ooo_pdus += 1;
            self.ooo.insert(d.seq, (d.flags, d.payload.clone()));
            // One nack per gap head to trigger fast retransmit.
            if self.last_nacked != Some(self.rcv_next) {
                self.last_nacked = Some(self.rcv_next);
                self.stats.acks_sent += 1;
                let k = CtrlKind::Nack { seq: self.rcv_next };
                self.outq.push_back(Pdu::Ctrl(self.ctrl_pdu(k)));
            }
            self.schedule_ack(now_ns);
            return;
        }
        // In-order.
        self.accept_in_order(d.flags, d.payload.clone());
        while let Some(e) = self.ooo.first_entry() {
            if *e.key() != self.rcv_next {
                break;
            }
            let (flags, payload) = e.remove();
            self.accept_in_order(flags, payload);
        }
        self.last_nacked = None;
        self.schedule_ack(now_ns);
    }

    /// Accept the in-sequence fragment at `rcv_next`.
    fn accept_in_order(&mut self, flags: u8, payload: Bytes) {
        self.rcv_next += 1;
        self.reasm.push(payload);
        if flags & FLAG_MORE == 0 {
            let sdu = concat(&mut self.reasm);
            self.stats.sdus_delivered += 1;
            self.stats.bytes_delivered += sdu.len() as u64;
            self.deliver_q.push_back(sdu);
        }
    }

    fn on_data_unreliable(&mut self, d: &DataPdu) {
        if d.seq < self.rcv_next {
            // Late/duplicate in unreliable mode: drop.
            self.stats.dup_pdus += 1;
            return;
        }
        let gap = d.seq > self.rcv_next;
        if gap {
            self.stats.ooo_pdus += 1;
        }
        let first = d.flags & FLAG_FIRST != 0;
        if (gap || first) && !self.reasm.is_empty() {
            // A gap (or an unexpected new SDU) killed the one being
            // reassembled.
            self.reasm.clear();
            self.stats.rcv_dropped += 1;
            self.dropping_sdu = true;
        }
        self.rcv_next = d.seq + 1;
        if !first && self.reasm.is_empty() {
            // Orphan continuation fragment: its SDU's head was lost.
            if !self.dropping_sdu {
                self.stats.rcv_dropped += 1;
                self.dropping_sdu = true;
            }
            return;
        }
        if first {
            self.dropping_sdu = false;
        }
        self.reasm.push(d.payload.clone());
        if d.flags & FLAG_MORE == 0 {
            let sdu = concat(&mut self.reasm);
            self.stats.sdus_delivered += 1;
            self.stats.bytes_delivered += sdu.len() as u64;
            self.deliver_q.push_back(sdu);
        }
    }

    fn schedule_ack(&mut self, now_ns: u64) {
        if !self.p.reliable {
            return;
        }
        if self.p.ack_delay_ns == 0 {
            self.emit_ack();
        } else {
            self.ack_pending = true;
            if self.ack_deadline.is_none() {
                self.ack_deadline = Some(now_ns + self.p.ack_delay_ns);
            }
        }
    }

    fn emit_ack(&mut self) {
        let rwe = if self.p.flow_control {
            self.rcv_next + self.p.credit_window
        } else {
            SeqNum::MAX / 4
        };
        self.stats.acks_sent += 1;
        let k = CtrlKind::AckCredit { seq: self.rcv_next, rwe };
        self.outq.push_back(Pdu::Ctrl(self.ctrl_pdu(k)));
        self.ack_pending = false;
        self.ack_deadline = None;
    }

    fn on_ctrl(&mut self, kind: CtrlKind, now_ns: u64) {
        match kind {
            CtrlKind::Ack { seq } => self.on_ack(seq, None, now_ns),
            CtrlKind::AckCredit { seq, rwe } => self.on_ack(seq, Some(rwe), now_ns),
            CtrlKind::Credit { rwe } => {
                self.credit_rwe = self.credit_rwe.max(rwe);
                self.pump(now_ns);
            }
            CtrlKind::Nack { seq } => {
                if let Some(e) = self.rtxq.get_mut(&seq) {
                    e.retries += 1;
                    let (flags, payload) = (e.flags, e.payload.clone());
                    self.stats.retransmissions += 1;
                    self.stats.pdus_sent += 1;
                    self.cong.on_fast_retransmit();
                    self.outq.push_back(Pdu::Data(self.data_pdu(seq, flags, payload)));
                }
            }
        }
    }

    fn on_ack(&mut self, seq: SeqNum, rwe: Option<SeqNum>, now_ns: u64) {
        if let Some(rwe) = rwe {
            self.credit_rwe = self.credit_rwe.max(rwe);
        }
        if seq > self.snd_una {
            let acked = seq - self.snd_una;
            self.snd_una = seq;
            self.rtxq = self.rtxq.split_off(&seq);
            self.cong.on_ack(acked);
            self.rtx_backoff = 0;
            self.rtx_deadline =
                if self.rtxq.is_empty() { None } else { Some(now_ns + self.p.rtx_timeout_ns) };
            // Go-back-N recovery: while below the loss frontier, each ack
            // pulls the next unacked PDU forward immediately.
            match self.recover_until {
                Some(frontier) if self.snd_una >= frontier || self.rtxq.is_empty() => {
                    self.recover_until = None;
                }
                Some(_) => {
                    if let Some((&head, e)) = self.rtxq.iter_mut().next() {
                        e.retries += 1;
                        let (flags, payload) = (e.flags, e.payload.clone());
                        self.stats.retransmissions += 1;
                        self.stats.pdus_sent += 1;
                        self.outq.push_back(Pdu::Data(self.data_pdu(head, flags, payload)));
                    }
                }
                None => {}
            }
        }
        self.pump(now_ns);
    }

    /// Earliest instant at which [`Connection::on_timeout`] must be called,
    /// if any timer is armed.
    pub fn poll_timeout(&self) -> Option<u64> {
        match (self.rtx_deadline, self.ack_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Drive timers. Call at (or after) the instant from
    /// [`Connection::poll_timeout`]; spurious calls are harmless.
    pub fn on_timeout(&mut self, now_ns: u64) {
        if let Some(d) = self.ack_deadline {
            if now_ns >= d && self.ack_pending {
                self.emit_ack();
            }
        }
        if let Some(d) = self.rtx_deadline {
            if now_ns >= d {
                self.retransmit_head(now_ns);
            }
        }
    }

    fn retransmit_head(&mut self, now_ns: u64) {
        let Some((&seq, e)) = self.rtxq.iter_mut().next() else {
            self.rtx_deadline = None;
            return;
        };
        if e.retries >= self.p.max_rtx {
            self.failed = true;
            self.rtx_deadline = None;
            return;
        }
        e.retries += 1;
        let (flags, payload) = (e.flags, e.payload.clone());
        self.stats.timeouts += 1;
        self.stats.retransmissions += 1;
        self.stats.pdus_sent += 1;
        self.cong.on_loss();
        self.recover_until = Some(self.next_seq);
        self.rtx_backoff = (self.rtx_backoff + 1).min(10);
        let mut rto = self.p.rtx_timeout_ns << self.rtx_backoff;
        if self.p.rtx_max_timeout_ns > 0 {
            rto = rto.min(self.p.rtx_max_timeout_ns);
        }
        self.rtx_deadline = Some(now_ns + rto);
        self.outq.push_back(Pdu::Data(self.data_pdu(seq, flags, payload)));
    }

    /// Next outgoing PDU, if any. Drain until `None` after every call into
    /// the connection.
    pub fn poll_transmit(&mut self) -> Option<Pdu> {
        self.outq.pop_front()
    }

    /// Next SDU delivered to the user, if any.
    pub fn poll_deliver(&mut self) -> Option<Bytes> {
        self.deliver_q.pop_front()
    }
}

fn concat(parts: &mut Vec<Bytes>) -> Bytes {
    if parts.len() == 1 {
        return parts.swap_remove(0);
    }
    let total = parts.iter().map(|p| p.len()).sum();
    let mut v = Vec::with_capacity(total);
    for p in parts.drain(..) {
        v.extend_from_slice(&p);
    }
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CongestionCtrl;

    fn pair(params: ConnParams) -> (Connection, Connection) {
        let a = Connection::new(
            ConnId { local_addr: 1, remote_addr: 2, local_cep: 10, remote_cep: 20, qos_id: 0 },
            params.clone(),
        );
        let b = Connection::new(
            ConnId { local_addr: 2, remote_addr: 1, local_cep: 20, remote_cep: 10, qos_id: 0 },
            params,
        );
        (a, b)
    }

    /// Move all pending PDUs between the two endpoints, dropping according
    /// to `drop`. Returns true if anything moved.
    fn shuttle(
        a: &mut Connection,
        b: &mut Connection,
        now: u64,
        drop: &mut impl FnMut(&Pdu) -> bool,
    ) -> bool {
        let mut moved = false;
        loop {
            let mut any = false;
            while let Some(p) = a.poll_transmit() {
                any = true;
                if !drop(&p) {
                    b.on_pdu(&p, now);
                }
            }
            while let Some(p) = b.poll_transmit() {
                any = true;
                if !drop(&p) {
                    a.on_pdu(&p, now);
                }
            }
            if !any {
                break;
            }
            moved = true;
        }
        moved
    }

    /// Run the pair with timers until both are idle or `max_ms` elapses.
    fn run(
        a: &mut Connection,
        b: &mut Connection,
        mut drop: impl FnMut(&Pdu) -> bool,
        max_ms: u64,
    ) {
        let mut now = 0u64;
        let end = max_ms * 1_000_000;
        loop {
            shuttle(a, b, now, &mut drop);
            if (a.is_idle() || a.is_failed()) && (b.is_idle() || b.is_failed()) {
                break;
            }
            let next = [a.poll_timeout(), b.poll_timeout()].into_iter().flatten().min();
            match next {
                Some(t) if t <= end => {
                    now = t.max(now);
                    a.on_timeout(now);
                    b.on_timeout(now);
                }
                _ => break,
            }
        }
    }

    fn drain(b: &mut Connection) -> Vec<Bytes> {
        std::iter::from_fn(|| b.poll_deliver()).collect()
    }

    #[test]
    fn local_congestion_backs_off_at_most_once_per_rtt() {
        let p = ConnParams::reliable().with_rtx_timeout_ns(1_000_000);
        let (mut a, _b) = pair(p);
        let before = a.cong.window();
        // A burst of drops from one overload event counts once.
        a.on_local_congestion(10);
        a.on_local_congestion(20);
        a.on_local_congestion(999_000);
        assert_eq!(a.stats().cong_backoffs, 1);
        let after = a.cong.window();
        assert!(after <= before, "window never grows on a congestion signal");
        // After an RTT the signal is armed again.
        a.on_local_congestion(1_000_010);
        assert_eq!(a.stats().cong_backoffs, 2);
    }

    #[test]
    fn basic_transfer_in_order() {
        let (mut a, mut b) = pair(ConnParams::reliable());
        for i in 0..10u8 {
            a.send_sdu(Bytes::from(vec![i; 100]), 0).unwrap();
        }
        run(&mut a, &mut b, |_| false, 1000);
        let got = drain(&mut b);
        assert_eq!(got.len(), 10);
        for (i, sdu) in got.iter().enumerate() {
            assert_eq!(sdu.as_ref(), &vec![i as u8; 100][..]);
        }
        assert_eq!(a.stats().retransmissions, 0);
    }

    #[test]
    fn fragmentation_and_reassembly() {
        let p = ConnParams::reliable().with_max_pdu_payload(100);
        let (mut a, mut b) = pair(p);
        let sdu = Bytes::from((0..1000u32).flat_map(|v| v.to_be_bytes()).collect::<Vec<u8>>());
        a.send_sdu(sdu.clone(), 0).unwrap();
        run(&mut a, &mut b, |_| false, 1000);
        let got = drain(&mut b);
        assert_eq!(got, vec![sdu]);
        assert!(a.stats().pdus_sent >= 40); // 4000 bytes / 100
    }

    #[test]
    fn loss_recovered_by_retransmission() {
        let (mut a, mut b) = pair(ConnParams::reliable());
        let mut n = 0u32;
        for i in 0..50u8 {
            a.send_sdu(Bytes::from(vec![i; 64]), 0).unwrap();
        }
        // Drop every 5th data PDU on its first transmission.
        let mut seen = std::collections::HashSet::new();
        run(
            &mut a,
            &mut b,
            |p| {
                if let Pdu::Data(d) = p {
                    n += 1;
                    if d.seq % 5 == 0 && seen.insert(d.seq) {
                        return true;
                    }
                }
                false
            },
            10_000,
        );
        let got = drain(&mut b);
        assert_eq!(got.len(), 50);
        for (i, sdu) in got.iter().enumerate() {
            assert_eq!(sdu[0], i as u8, "order preserved");
        }
        assert!(a.stats().retransmissions >= 10);
        assert!(!a.is_failed());
    }

    #[test]
    fn nack_triggers_fast_retransmit_without_timeout() {
        let (mut a, mut b) = pair(ConnParams::reliable());
        for i in 0..5u8 {
            a.send_sdu(Bytes::from(vec![i; 10]), 0).unwrap();
        }
        // Drop only seq 0 on first transmission; nack from ooo arrivals
        // should recover it without any timer firing.
        let mut dropped = false;
        let mut now = 0u64;
        loop {
            let moved = shuttle(&mut a, &mut b, now, &mut |p| {
                if let Pdu::Data(d) = p {
                    if d.seq == 0 && !dropped {
                        dropped = true;
                        return true;
                    }
                }
                false
            });
            if !moved {
                break;
            }
            now += 1000;
        }
        assert_eq!(drain(&mut b).len(), 5);
        assert_eq!(a.stats().timeouts, 0, "recovered via nack, not timeout");
        assert_eq!(a.stats().retransmissions, 1);
    }

    #[test]
    fn window_stalls_then_credit_opens() {
        let p = ConnParams::reliable().with_credit_window(4).with_congestion(CongestionCtrl::None);
        let (mut a, mut b) = pair(p);
        for i in 0..20u8 {
            a.send_sdu(Bytes::from(vec![i; 8]), 0).unwrap();
        }
        // Without feedback, only the window's worth is emitted.
        let mut first_burst = 0;
        let mut held = Vec::new();
        while let Some(pdu) = a.poll_transmit() {
            first_burst += 1;
            held.push(pdu);
        }
        assert_eq!(first_burst, 4);
        // Deliver them; acks open the window.
        for pdu in &held {
            b.on_pdu(pdu, 0);
        }
        let mut acked = 0;
        while let Some(pdu) = b.poll_transmit() {
            a.on_pdu(&pdu, 0);
            acked += 1;
        }
        assert!(acked >= 1);
        assert!(a.poll_transmit().is_some(), "window reopened");
    }

    #[test]
    fn max_rtx_fails_connection() {
        let p = ConnParams::reliable().with_rtx_timeout_ns(1_000_000);
        let mut pp = p;
        pp.max_rtx = 3;
        let (mut a, mut b) = pair(pp);
        a.send_sdu(Bytes::from_static(b"doomed"), 0).unwrap();
        // Black hole: drop everything.
        run(&mut a, &mut b, |_| true, 10_000);
        assert!(a.is_failed());
        assert_eq!(a.send_sdu(Bytes::from_static(b"x"), 0), Err(SendSduError::ConnectionFailed));
    }

    #[test]
    fn duplicate_pdus_discarded() {
        let (mut a, mut b) = pair(ConnParams::reliable());
        a.send_sdu(Bytes::from_static(b"once"), 0).unwrap();
        let pdu = a.poll_transmit().unwrap();
        b.on_pdu(&pdu, 0);
        b.on_pdu(&pdu, 0);
        b.on_pdu(&pdu, 0);
        assert_eq!(drain(&mut b).len(), 1);
        assert_eq!(b.stats().dup_pdus, 2);
    }

    #[test]
    fn unreliable_drops_are_not_recovered() {
        let (mut a, mut b) = pair(ConnParams::unreliable());
        for i in 0..10u8 {
            a.send_sdu(Bytes::from(vec![i; 32]), 0).unwrap();
        }
        let mut k = 0;
        run(
            &mut a,
            &mut b,
            |p| {
                if matches!(p, Pdu::Data(_)) {
                    k += 1;
                    k % 3 == 0
                } else {
                    false
                }
            },
            100,
        );
        let got = drain(&mut b);
        assert!(got.len() < 10 && got.len() >= 5, "got {}", got.len());
        assert_eq!(a.stats().retransmissions, 0);
        // Delivered SDUs are intact even though some were lost.
        for sdu in got {
            assert_eq!(sdu.len(), 32);
        }
    }

    #[test]
    fn unreliable_fragmented_sdu_dropped_on_gap() {
        let p = ConnParams::unreliable().with_max_pdu_payload(10);
        let (mut a, mut b) = pair(p);
        a.send_sdu(Bytes::from(vec![1u8; 25]), 0).unwrap(); // 3 fragments
        a.send_sdu(Bytes::from(vec![2u8; 5]), 0).unwrap(); // 1 PDU
                                                           // Drop the middle fragment (seq 1).
        run(&mut a, &mut b, |p| matches!(p, Pdu::Data(d) if d.seq == 1), 100);
        let got = drain(&mut b);
        assert_eq!(got.len(), 1, "partial SDU dropped, whole one kept");
        assert_eq!(got[0].as_ref(), &[2u8; 5][..]);
        assert_eq!(b.stats().rcv_dropped, 1);
    }

    #[test]
    fn rebinding_remote_addr_changes_pdu_destination() {
        let (mut a, _b) = pair(ConnParams::reliable());
        a.send_sdu(Bytes::from_static(b"x"), 0).unwrap();
        let p1 = a.poll_transmit().unwrap();
        assert_eq!(p1.dest_addr(), 2);
        a.set_remote_addr(99);
        a.send_sdu(Bytes::from_static(b"y"), 0).unwrap();
        let p2 = a.poll_transmit().unwrap();
        assert_eq!(p2.dest_addr(), 99);
    }

    #[test]
    fn delayed_ack_batches() {
        let mut p = ConnParams::reliable().with_congestion(CongestionCtrl::None);
        p.ack_delay_ns = 5_000_000;
        let (mut a, mut b) = pair(p);
        for _ in 0..8 {
            a.send_sdu(Bytes::from_static(b"z"), 0).unwrap();
        }
        while let Some(pdu) = a.poll_transmit() {
            b.on_pdu(&pdu, 0);
        }
        // No ack yet.
        assert!(b.poll_transmit().is_none());
        let t = b.poll_timeout().unwrap();
        b.on_timeout(t);
        let acks: Vec<_> = std::iter::from_fn(|| b.poll_transmit()).collect();
        assert_eq!(acks.len(), 1, "one cumulative ack for 8 PDUs");
        match &acks[0] {
            Pdu::Ctrl(c) => assert_eq!(c.kind, CtrlKind::AckCredit { seq: 8, rwe: 8 + 256 }),
            _ => panic!("expected ctrl"),
        }
    }

    #[test]
    fn drf_set_on_first_pdu_only() {
        let (mut a, _) = pair(ConnParams::reliable());
        a.send_sdu(Bytes::from_static(b"1"), 0).unwrap();
        a.send_sdu(Bytes::from_static(b"2"), 0).unwrap();
        let p1 = a.poll_transmit().unwrap();
        let p2 = a.poll_transmit().unwrap();
        match (p1, p2) {
            (Pdu::Data(d1), Pdu::Data(d2)) => {
                assert!(d1.flags & FLAG_DRF != 0);
                assert!(d2.flags & FLAG_DRF == 0);
            }
            _ => panic!("expected data"),
        }
    }

    #[test]
    fn backpressure_at_sendq_limit() {
        let p = ConnParams::reliable().with_credit_window(1).with_congestion(CongestionCtrl::None);
        let (mut a, _) = pair(p);
        let mut hit = false;
        for _ in 0..(SENDQ_LIMIT + 10) {
            if a.send_sdu(Bytes::from_static(b"q"), 0) == Err(SendSduError::Backpressured) {
                hit = true;
                break;
            }
        }
        assert!(hit);
    }
}
