//! # rina-efcp — the Error and Flow Control Protocol
//!
//! EFCP is the per-flow data-transfer mechanism of every DIF in the
//! `netipc` reproduction of *"Networking is IPC"* (Day, Matta, Mattar
//! 2008). One implementation, many behaviours: a [`ConnParams`] policy set
//! turns the same state machine into a reliable ordered byte-stream, an
//! unreliable datagram flow, or a short-feedback-loop segment protocol for
//! the lossy inner DIFs of the paper's Figure 3.
//!
//! The crate is sans-IO (no sockets, no clock): a [`Connection`] consumes
//! SDUs, PDUs and timeout notifications, and is polled for outgoing PDUs
//! and delivered SDUs. The `rina` crate instantiates one `Connection` per
//! allocated flow and wires it to the relaying/multiplexing task.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod cong;
mod conn;
mod params;

pub use conn::{ConnId, ConnStats, Connection, SendSduError};
pub use params::{CongestionCtrl, ConnParams};
