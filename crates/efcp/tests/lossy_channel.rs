//! End-to-end property tests: an EFCP connection pair driven over a
//! deliberately hostile channel (loss, reordering, duplication) must still
//! deliver every SDU exactly once, in order, for reliable parameters.

use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rina_efcp::{ConnId, ConnParams, Connection};
use rina_wire::Pdu;

/// A channel that delays PDUs by a random number of steps, drops some, and
/// occasionally duplicates — deterministic in its seed.
struct HostileChannel {
    rng: SmallRng,
    /// (deliver_step, pdu)
    in_flight: Vec<(u64, Pdu)>,
    drop_p: f64,
    dup_p: f64,
    max_jitter: u64,
}

impl HostileChannel {
    fn new(seed: u64, drop_p: f64, dup_p: f64, max_jitter: u64) -> Self {
        HostileChannel {
            rng: SmallRng::seed_from_u64(seed),
            in_flight: Vec::new(),
            drop_p,
            dup_p,
            max_jitter,
        }
    }

    fn offer(&mut self, step: u64, pdu: Pdu) {
        if self.rng.gen_bool(self.drop_p) {
            return;
        }
        let d = step + 1 + self.rng.gen_range(0..=self.max_jitter);
        if self.rng.gen_bool(self.dup_p) {
            let d2 = step + 1 + self.rng.gen_range(0..=self.max_jitter);
            self.in_flight.push((d2, pdu.clone()));
        }
        self.in_flight.push((d, pdu));
    }

    fn due(&mut self, step: u64) -> Vec<Pdu> {
        let (ready, later): (Vec<_>, Vec<_>) =
            self.in_flight.drain(..).partition(|(s, _)| *s <= step);
        self.in_flight = later;
        ready.into_iter().map(|(_, p)| p).collect()
    }

    fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }
}

fn endpoints(params: &ConnParams) -> (Connection, Connection) {
    let a = Connection::new(
        ConnId { local_addr: 1, remote_addr: 2, local_cep: 1, remote_cep: 2, qos_id: 0 },
        params.clone(),
    );
    let b = Connection::new(
        ConnId { local_addr: 2, remote_addr: 1, local_cep: 2, remote_cep: 1, qos_id: 0 },
        params.clone(),
    );
    (a, b)
}

/// Drive a full transfer of `sdus` from a to b across the hostile channel.
/// Each step is 1 ms of virtual time. Returns SDUs delivered at b.
fn transfer(sdus: &[Vec<u8>], params: ConnParams, seed: u64, drop_p: f64) -> Vec<Bytes> {
    let (mut a, mut b) = endpoints(&params);
    let mut ab = HostileChannel::new(seed, drop_p, 0.05, 3);
    let mut ba = HostileChannel::new(seed.wrapping_add(1), drop_p, 0.05, 3);
    for s in sdus {
        a.send_sdu(Bytes::from(s.clone()), 0).expect("queue");
    }
    let mut delivered = Vec::new();
    let step_ns = 1_000_000u64;
    for step in 0..200_000u64 {
        let now = step * step_ns;
        while let Some(p) = a.poll_transmit() {
            ab.offer(step, p);
        }
        while let Some(p) = b.poll_transmit() {
            ba.offer(step, p);
        }
        for p in ab.due(step) {
            b.on_pdu(&p, now);
        }
        for p in ba.due(step) {
            a.on_pdu(&p, now);
        }
        if let Some(t) = a.poll_timeout() {
            if t <= now {
                a.on_timeout(now);
            }
        }
        if let Some(t) = b.poll_timeout() {
            if t <= now {
                b.on_timeout(now);
            }
        }
        while let Some(s) = b.poll_deliver() {
            delivered.push(s);
        }
        if a.is_idle() && b.is_idle() && ab.is_empty() && ba.is_empty() {
            break;
        }
        assert!(!a.is_failed(), "sender failed at step {step}");
    }
    delivered
}

#[test]
fn bulk_transfer_over_20pct_loss() {
    let sdus: Vec<Vec<u8>> = (0..200).map(|i| vec![(i % 251) as u8; 700]).collect();
    let got = transfer(&sdus, ConnParams::reliable(), 99, 0.20);
    assert_eq!(got.len(), sdus.len());
    for (want, got) in sdus.iter().zip(&got) {
        assert_eq!(&want[..], got.as_ref());
    }
}

#[test]
fn large_fragmented_sdus_survive_loss() {
    let sdus: Vec<Vec<u8>> =
        (0..20).map(|i| (0..10_000).map(|j| ((i * 7 + j) % 256) as u8).collect()).collect();
    let p = ConnParams::reliable().with_max_pdu_payload(512);
    let got = transfer(&sdus, p, 7, 0.10);
    assert_eq!(got.len(), 20);
    for (want, got) in sdus.iter().zip(&got) {
        assert_eq!(&want[..], got.as_ref());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_reliable_exactly_once_in_order(
        seed in any::<u64>(),
        drop_p in 0.0f64..0.35,
        sizes in proptest::collection::vec(1usize..3000, 1..40),
    ) {
        let sdus: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut rng = SmallRng::seed_from_u64(seed ^ i as u64);
                (0..n).map(|_| rng.gen()).collect()
            })
            .collect();
        // Short base RTO: with heavy loss, exponential backoff on the
        // default 200ms RTO can push a retry past the harness horizon.
        let params = ConnParams::reliable().with_rtx_timeout_ns(20_000_000);
        let got = transfer(&sdus, params, seed, drop_p);
        prop_assert_eq!(got.len(), sdus.len());
        for (want, got) in sdus.iter().zip(&got) {
            prop_assert_eq!(&want[..], got.as_ref());
        }
    }
}
