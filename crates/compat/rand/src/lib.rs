//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the `rand` 0.8 API it uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`], and
//! [`seq::SliceRandom::shuffle`]. Both [`rngs::StdRng`] and
//! [`rngs::SmallRng`] are xoshiro256++ seeded via splitmix64 — fully
//! deterministic, which is all the simulator requires (it never promises
//! stream compatibility with upstream `rand`).

#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically seed from a `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// xoshiro256++ core state.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the full state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The provided RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The "standard" RNG (here: xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    /// A small, fast RNG (here: the same xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state))
        }
    }
    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Out;
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Out;
}

macro_rules! impl_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Out = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Out = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}
impl_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Out = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }

    /// A uniformly random value from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Out
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Sequence-related sampling.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Uniformly permute in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = SmallRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
