//! Offline drop-in subset of the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `bytes` API it actually uses: [`Bytes`] — a
//! cheaply cloneable, reference-counted, sliceable byte buffer. Slices
//! share the parent's backing allocation (zero copy), which some wire
//! tests assert on.

#![warn(missing_docs)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous slice of immutable bytes.
///
/// Clones and [`Bytes::slice`] views share one reference-counted backing
/// allocation; no data is copied.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice (copied once into the shared allocation).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy `s` into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing this buffer's backing allocation.
    ///
    /// # Panics
    /// If the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Mutable access to this view's bytes, copy-on-write.
    ///
    /// If this `Bytes` is the sole owner of its backing allocation, the
    /// bytes are patched in place (zero copy — the relay fast path). If the
    /// allocation is shared with clones or sub-slices (e.g. a flood batch
    /// fanned out across ports), the view's range is first copied into a
    /// fresh private allocation so the other holders never observe the
    /// mutation.
    pub fn make_mut(&mut self) -> &mut [u8] {
        if Arc::get_mut(&mut self.data).is_none() {
            let copy: Arc<[u8]> = self.data[self.start..self.end].into();
            self.data = copy;
            self.start = 0;
            self.end = self.data.len();
        }
        let (start, end) = (self.start, self.end);
        // The branch above guaranteed uniqueness; a concurrent clone is
        // impossible while we hold `&mut self`.
        match Arc::get_mut(&mut self.data) {
            Some(buf) => &mut buf[start..end],
            None => unreachable!("sole owner after copy-on-write"),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let base = b.as_ptr() as usize;
        let p = s.as_ptr() as usize;
        assert!(p >= base && p < base + b.len());
    }

    #[test]
    fn empty_and_equality() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert_eq!(Bytes::from_static(b"abc"), *b"abc");
    }

    #[test]
    fn make_mut_unique_patches_in_place() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let before = b.as_ptr();
        b.make_mut()[2] = 9;
        assert_eq!(&b[..], &[1, 2, 9, 4]);
        assert_eq!(b.as_ptr(), before, "sole owner must not reallocate");
    }

    #[test]
    fn make_mut_shared_copies_on_write() {
        let mut a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        a.make_mut()[0] = 9;
        assert_eq!(&a[..], &[9, 2, 3, 4]);
        assert_eq!(&b[..], &[1, 2, 3, 4], "clone must not see the write");
        assert_ne!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn make_mut_on_slice_view_keeps_parent_intact() {
        let parent = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mut view = parent.slice(2..5);
        view.make_mut()[0] = 9;
        assert_eq!(&view[..], &[9, 3, 4]);
        assert_eq!(&parent[..], &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn range_forms() {
        let b = Bytes::from(vec![0u8, 1, 2, 3]);
        assert_eq!(&b.slice(..)[..], &[0, 1, 2, 3]);
        assert_eq!(&b.slice(2..)[..], &[2, 3]);
        assert_eq!(&b.slice(..2)[..], &[0, 1]);
        assert_eq!(&b.slice(1..=2)[..], &[1, 2]);
    }
}
