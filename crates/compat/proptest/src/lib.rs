//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro over named
//! strategies, [`any`], integer/float range strategies, a `[class]{lo,hi}`
//! regex-literal string strategy, [`collection::vec`], and the
//! `prop_assert*` macros. Cases are generated from a deterministic RNG
//! keyed by test name and case index — no shrinking, no persistence, but
//! every failure reproduces exactly.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (subset: case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a of a string — keys the per-test RNG stream.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The deterministic RNG driving one test case.
pub fn test_rng(test_key: u64, case: u64) -> SmallRng {
    SmallRng::seed_from_u64(test_key ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A value generator. Strategies are sampled once per argument per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

/// Uniform values over the whole domain of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String strategy from a regex-literal of the shape `[class]{lo,hi}`,
/// where `class` mixes literal characters and `a-z` ranges.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut SmallRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| chars[rng.gen_range(0..chars.len())]).collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() || lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for vectors — see [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vectors of `element`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Define deterministic property tests.
///
/// Supports the subset of upstream syntax the workspace uses: an optional
/// `#![proptest_config(...)]` header and one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    ( $(#![proptest_config($cfg:expr)])?
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+
    ) => {
        fn __proptest_cases() -> u32 {
            #[allow(unused_variables)]
            let cfg = $crate::ProptestConfig::default();
            $( let cfg = $cfg; )?
            cfg.cases
        }
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..__proptest_cases() {
                    let mut __rng =
                        $crate::test_rng($crate::fnv(stringify!($name)), __case as u64);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )+
    };
}

/// Property-test assertion (here: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion (here: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion (here: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u8..9, y in 1usize..=4, f in 0.0f64..0.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.0..0.5).contains(&f));
        }

        #[test]
        fn strings_match_class(s in "[a-c/]{2,6}") {
            prop_assert!(s.len() >= 2 && s.len() <= 6);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '/')));
        }

        #[test]
        fn vectors_sized(v in crate::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng(crate::fnv("t"), 3);
        let mut b = crate::test_rng(crate::fnv("t"), 3);
        let sa = crate::Strategy::sample(&"[a-z]{8,8}", &mut a);
        let sb = crate::Strategy::sample(&"[a-z]{8,8}", &mut b);
        assert_eq!(sa, sb);
    }
}
