//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion API its benches use: benchmark groups with
//! `sample_size`/`warm_up_time`/`measurement_time`, `bench_function`,
//! `bench_with_input`, and the `criterion_group!`/`criterion_main!`
//! macros. Statistics are minimal — mean wall-clock per iteration over a
//! bounded sample — but the harness shape and output are compatible
//! enough for `cargo bench` to run every wrapper unchanged.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Set the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration (budget, not a guarantee).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measure a closure.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new() };
        // One warm-up pass, then sample until the size or time budget is hit.
        f(&mut b);
        b.samples.clear();
        let budget = Instant::now();
        while b.samples.len() < self.sample_size && budget.elapsed() < self.measurement_time {
            f(&mut b);
        }
        let n = b.samples.len().max(1);
        let mean = b.samples.iter().sum::<Duration>() / n as u32;
        println!("  {name}: {mean:?} mean over {n} samples");
        self
    }

    /// Measure a closure with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Measures one sample per [`Bencher::iter`] call.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `f` (criterion amortizes batches; one
    /// iteration per sample is enough at this fidelity).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t = Instant::now();
        let out = f();
        self.samples.push(t.elapsed());
        black_box(out);
    }
}

/// Prevent the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Generate `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u32;
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_secs(5));
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 4, "one warm-up + three samples");
    }
}
