//! # rina-wire — wire formats for the recursive-IPC suite
//!
//! Concrete protocol *syntax* for the `netipc` reproduction of Day, Matta &
//! Mattar's *"Networking is IPC"* (2008). The paper deliberately does not
//! fix encodings ("it should be possible to change protocols in an
//! architecture without changing the architecture"); this crate provides
//! one unambiguous, compact choice:
//!
//! * [`codec`] — varints, big-endian integers, length-prefixed strings.
//! * [`efcp`] — the EFCP data-transfer (DTP) and transfer-control (DTCP)
//!   PDUs, plus the management PDU that carries CDAP.
//! * [`cdap`] — the management envelope (operation on a named object).
//! * [`crc`] — CRC-32 framing integrity.
//!
//! All decoders are total: arbitrary bytes produce an error, never a panic
//! (verified by property tests).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod cdap;
pub mod codec;
pub mod crc;
pub mod efcp;
mod error;

pub use cdap::{CdapMsg, OpCode, RES_OK};
pub use efcp::{Addr, CepId, CtrlKind, CtrlPdu, DataPdu, MgmtPdu, Pdu, PduKind, PduView, SeqNum};
pub use error::WireError;
