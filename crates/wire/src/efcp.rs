//! EFCP PDU syntax: the data-transfer (DTP) and transfer-control (DTCP)
//! PDUs exchanged between IPC processes of one DIF, plus the management PDU
//! that carries CDAP between layer-management tasks.
//!
//! Addresses here are *internal to a DIF* (the paper's §3.2: "addresses …
//! are internal identifiers used by the members of the DIF"); nothing in
//! this format is visible to applications.

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use bytes::Bytes;

/// An IPC-process address, meaningful only within one DIF. Address 0 is
/// reserved to mean "unaddressed / link-local next hop" and is used during
/// enrollment before an address has been assigned.
pub type Addr = u64;
/// A connection-endpoint id, local to one IPC process.
pub type CepId = u32;
/// A DTP sequence number.
pub type SeqNum = u64;

/// Wire format version implemented by this crate.
pub const WIRE_VERSION: u8 = 1;

/// Default initial TTL for relayed PDUs.
pub const DEFAULT_TTL: u8 = 64;

/// Flag bit: Data Run Flag — first PDU of a new run (fresh connection state).
pub const FLAG_DRF: u8 = 0x01;
/// Flag bit: this PDU is a fragment and more fragments of the SDU follow.
pub const FLAG_MORE: u8 = 0x02;
/// Flag bit: explicit congestion notification (set by relays under pressure).
pub const FLAG_ECN: u8 = 0x04;
/// Flag bit: this PDU carries the *first* fragment of an SDU (set together
/// with a clear `FLAG_MORE` on unfragmented SDUs). Lets receivers on
/// unreliable flows resynchronize SDU boundaries after loss.
pub const FLAG_FIRST: u8 = 0x08;

/// A data-transfer PDU (DTP).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataPdu {
    /// Destination IPC-process address within the DIF.
    pub dest_addr: Addr,
    /// Source IPC-process address within the DIF.
    pub src_addr: Addr,
    /// QoS cube id the flow belongs to (selects relay queue and policies).
    pub qos_id: u8,
    /// Destination connection endpoint.
    pub dest_cep: CepId,
    /// Source connection endpoint.
    pub src_cep: CepId,
    /// Sequence number.
    pub seq: SeqNum,
    /// OR of the `FLAG_*` bits.
    pub flags: u8,
    /// Remaining relay hops; decremented by each relay.
    pub ttl: u8,
    /// User data (possibly one fragment of an SDU).
    pub payload: Bytes,
}

/// The control content of a DTCP PDU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlKind {
    /// Cumulative acknowledgement: everything `< seq` has been delivered.
    Ack {
        /// Next expected sequence number.
        seq: SeqNum,
    },
    /// Selective negative acknowledgement of one missing PDU.
    Nack {
        /// The missing sequence number.
        seq: SeqNum,
    },
    /// Flow-control only: advance the sender's right window edge.
    Credit {
        /// New right window edge (highest sendable seq, exclusive).
        rwe: SeqNum,
    },
    /// Combined ack + credit, the common case.
    AckCredit {
        /// Next expected sequence number.
        seq: SeqNum,
        /// New right window edge (exclusive).
        rwe: SeqNum,
    },
}

/// A transfer-control (DTCP) PDU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtrlPdu {
    /// Destination IPC-process address within the DIF.
    pub dest_addr: Addr,
    /// Source IPC-process address within the DIF.
    pub src_addr: Addr,
    /// QoS cube id of the controlled flow.
    pub qos_id: u8,
    /// Destination connection endpoint.
    pub dest_cep: CepId,
    /// Source connection endpoint.
    pub src_cep: CepId,
    /// Remaining relay hops.
    pub ttl: u8,
    /// The control information.
    pub kind: CtrlKind,
}

/// A management PDU carrying a CDAP message between the layer-management
/// tasks of two IPC processes. Delivery is datagram (management protocols
/// are idempotent or retried); relayed like data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MgmtPdu {
    /// Destination IPC-process address, or 0 for "the IPC process at the
    /// other end of this (N-1) flow" (used during enrollment).
    pub dest_addr: Addr,
    /// Source IPC-process address, or 0 before an address is assigned.
    pub src_addr: Addr,
    /// Remaining relay hops.
    pub ttl: u8,
    /// Encoded CDAP message.
    pub payload: Bytes,
}

/// Any PDU of a DIF, as relayed by the RMT and delivered to EFCP instances
/// or the management AE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pdu {
    /// Data transfer.
    Data(DataPdu),
    /// Transfer control.
    Ctrl(CtrlPdu),
    /// Layer management (CDAP).
    Mgmt(MgmtPdu),
}

const T_DATA: u8 = 0x81;
const T_CTRL: u8 = 0x82;
const T_MGMT: u8 = 0x83;

const CK_ACK: u8 = 1;
const CK_NACK: u8 = 2;
const CK_CREDIT: u8 = 3;
const CK_ACK_CREDIT: u8 = 4;

impl Pdu {
    /// Destination address, for relay decisions.
    pub fn dest_addr(&self) -> Addr {
        match self {
            Pdu::Data(p) => p.dest_addr,
            Pdu::Ctrl(p) => p.dest_addr,
            Pdu::Mgmt(p) => p.dest_addr,
        }
    }

    /// Source address.
    pub fn src_addr(&self) -> Addr {
        match self {
            Pdu::Data(p) => p.src_addr,
            Pdu::Ctrl(p) => p.src_addr,
            Pdu::Mgmt(p) => p.src_addr,
        }
    }

    /// QoS cube id (management PDUs ride the highest-priority cube, 0).
    pub fn qos_id(&self) -> u8 {
        match self {
            Pdu::Data(p) => p.qos_id,
            Pdu::Ctrl(p) => p.qos_id,
            Pdu::Mgmt(_) => 0,
        }
    }

    /// Remaining TTL.
    pub fn ttl(&self) -> u8 {
        match self {
            Pdu::Data(p) => p.ttl,
            Pdu::Ctrl(p) => p.ttl,
            Pdu::Mgmt(p) => p.ttl,
        }
    }

    /// Decrement TTL, returning `false` if it was already zero (drop).
    pub fn decrement_ttl(&mut self) -> bool {
        let ttl = match self {
            Pdu::Data(p) => &mut p.ttl,
            Pdu::Ctrl(p) => &mut p.ttl,
            Pdu::Mgmt(p) => &mut p.ttl,
        };
        if *ttl == 0 {
            return false;
        }
        *ttl -= 1;
        true
    }

    /// Encode to bytes with version byte and trailing CRC-32.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(32 + self.payload_len());
        w.u8(WIRE_VERSION);
        match self {
            Pdu::Data(p) => {
                w.u8(T_DATA)
                    .varint(p.dest_addr)
                    .varint(p.src_addr)
                    .u8(p.qos_id)
                    .varint(p.dest_cep as u64)
                    .varint(p.src_cep as u64)
                    .varint(p.seq)
                    .u8(p.flags)
                    .u8(p.ttl)
                    .raw(&p.payload);
            }
            Pdu::Ctrl(p) => {
                w.u8(T_CTRL)
                    .varint(p.dest_addr)
                    .varint(p.src_addr)
                    .u8(p.qos_id)
                    .varint(p.dest_cep as u64)
                    .varint(p.src_cep as u64)
                    .u8(p.ttl);
                match p.kind {
                    CtrlKind::Ack { seq } => {
                        w.u8(CK_ACK).varint(seq);
                    }
                    CtrlKind::Nack { seq } => {
                        w.u8(CK_NACK).varint(seq);
                    }
                    CtrlKind::Credit { rwe } => {
                        w.u8(CK_CREDIT).varint(rwe);
                    }
                    CtrlKind::AckCredit { seq, rwe } => {
                        w.u8(CK_ACK_CREDIT).varint(seq).varint(rwe);
                    }
                }
            }
            Pdu::Mgmt(p) => {
                w.u8(T_MGMT).varint(p.dest_addr).varint(p.src_addr).u8(p.ttl).raw(&p.payload);
            }
        }
        w.finish_with_crc()
    }

    /// Decode from bytes, verifying the CRC. The payload of data/management
    /// PDUs is a zero-copy slice of `buf`.
    pub fn decode(buf: &Bytes) -> Result<Pdu, WireError> {
        let mut r = Reader::new_checked(buf)?;
        let v = r.u8()?;
        if v != WIRE_VERSION {
            return Err(WireError::BadVersion(v));
        }
        let t = r.u8()?;
        match t {
            T_DATA => {
                let dest_addr = r.varint()?;
                let src_addr = r.varint()?;
                let qos_id = r.u8()?;
                let dest_cep = cep(r.varint()?)?;
                let src_cep = cep(r.varint()?)?;
                let seq = r.varint()?;
                let flags = r.u8()?;
                let ttl = r.u8()?;
                let payload = slice_rest(buf, &mut r);
                Ok(Pdu::Data(DataPdu {
                    dest_addr,
                    src_addr,
                    qos_id,
                    dest_cep,
                    src_cep,
                    seq,
                    flags,
                    ttl,
                    payload,
                }))
            }
            T_CTRL => {
                let dest_addr = r.varint()?;
                let src_addr = r.varint()?;
                let qos_id = r.u8()?;
                let dest_cep = cep(r.varint()?)?;
                let src_cep = cep(r.varint()?)?;
                let ttl = r.u8()?;
                let kind = match r.u8()? {
                    CK_ACK => CtrlKind::Ack { seq: r.varint()? },
                    CK_NACK => CtrlKind::Nack { seq: r.varint()? },
                    CK_CREDIT => CtrlKind::Credit { rwe: r.varint()? },
                    CK_ACK_CREDIT => CtrlKind::AckCredit { seq: r.varint()?, rwe: r.varint()? },
                    _ => return Err(WireError::Invalid("ctrl kind")),
                };
                r.expect_end()?;
                Ok(Pdu::Ctrl(CtrlPdu { dest_addr, src_addr, qos_id, dest_cep, src_cep, ttl, kind }))
            }
            T_MGMT => {
                let dest_addr = r.varint()?;
                let src_addr = r.varint()?;
                let ttl = r.u8()?;
                let payload = slice_rest(buf, &mut r);
                Ok(Pdu::Mgmt(MgmtPdu { dest_addr, src_addr, ttl, payload }))
            }
            _ => Err(WireError::Invalid("pdu type")),
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            Pdu::Data(p) => p.payload.len(),
            Pdu::Mgmt(p) => p.payload.len(),
            Pdu::Ctrl(_) => 0,
        }
    }

    /// Encoded header + trailer overhead for this PDU (everything except the
    /// payload). Used by the header-overhead experiment.
    pub fn overhead(&self) -> usize {
        self.encode().len() - self.payload_len()
    }
}

impl DataPdu {
    /// Encode with a caller-known `crc32(payload)`, skipping the payload
    /// re-sum: the trailer is `crc32_combine(crc32(header), payload_crc)`.
    /// Byte-identical to `Pdu::Data(self).encode()` (pinned by proptest)
    /// whenever `payload_crc` is correct.
    ///
    /// This is the shim-wrap fast path: a lower-layer flow encapsulating an
    /// upper DIF's frame already holds the payload's CRC in that frame's own
    /// trailer ([`crate::crc::crc32_of_trailed`]), so the whole outer
    /// trailer costs O(1) instead of a full pass over the bytes.
    pub fn encode_with_payload_crc(&self, payload_crc: u32) -> Bytes {
        let mut w = Writer::with_capacity(32 + self.payload.len());
        w.u8(WIRE_VERSION)
            .u8(T_DATA)
            .varint(self.dest_addr)
            .varint(self.src_addr)
            .u8(self.qos_id)
            .varint(self.dest_cep as u64)
            .varint(self.src_cep as u64)
            .varint(self.seq)
            .u8(self.flags)
            .u8(self.ttl);
        let header_crc = crate::crc::crc32(w.as_slice());
        w.raw(&self.payload);
        w.finish_with_crc_value(crate::crc::crc32_combine(
            header_crc,
            payload_crc,
            self.payload.len(),
        ))
    }
}

fn cep(v: u64) -> Result<CepId, WireError> {
    CepId::try_from(v).map_err(|_| WireError::Invalid("cep id"))
}

/// Which PDU type an encoded frame carries, as read by [`PduView::peek`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PduKind {
    /// Data transfer.
    Data,
    /// Transfer control.
    Ctrl,
    /// Layer management.
    Mgmt,
}

/// A relay's view of an encoded frame: the handful of header fields the
/// relaying function needs, read in place — no allocation, no payload copy,
/// no `Pdu` construction.
///
/// `peek` validates exactly the prefix it reads (version, type tag, the
/// varints up to the TTL byte), which is a strict subset of what
/// [`Pdu::decode`] validates: it does **not** verify the CRC trailer, the
/// control-kind suffix, or trailing-byte hygiene. The contract, pinned by
/// proptest, is therefore one-directional — every frame `decode` accepts,
/// `peek` accepts with identical field values, and every frame `peek`
/// rejects, `decode` rejects. A corrupted frame that slips through is
/// caught by the full decode at its terminal hop; simulator links lose
/// frames but never corrupt them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PduView {
    /// PDU type tag.
    pub kind: PduKind,
    /// Destination address, for the relay decision.
    pub dest_addr: Addr,
    /// Source address.
    pub src_addr: Addr,
    /// QoS cube id (management PDUs ride cube 0, mirroring [`Pdu::qos_id`]).
    pub qos_id: u8,
    /// Destination CEP id for data/control PDUs (flow demultiplexing at
    /// the terminal hop); `None` for management PDUs.
    pub dest_cep: Option<CepId>,
    /// Source CEP id for data/control PDUs (owner lookup for congestion
    /// feedback); `None` for management PDUs.
    pub src_cep: Option<CepId>,
    /// Remaining TTL.
    pub ttl: u8,
    /// Byte offset of the TTL within the frame, for in-place patching.
    pub ttl_offset: usize,
}

impl PduView {
    /// Peek the relay-relevant header fields of an encoded frame.
    ///
    /// Returns `None` on anything the full decoder would reject in the
    /// peeked prefix; never panics on arbitrary bytes.
    pub fn peek(frame: &[u8]) -> Option<PduView> {
        if frame.len() < 4 {
            return None;
        }
        // The CRC trailer is not part of the header; exclude it so a header
        // truncated into the trailer bytes is rejected here like in decode.
        let body = &frame[..frame.len() - 4];
        let mut r = Reader::new(body);
        if r.u8().ok()? != WIRE_VERSION {
            return None;
        }
        let kind = match r.u8().ok()? {
            T_DATA => PduKind::Data,
            T_CTRL => PduKind::Ctrl,
            T_MGMT => PduKind::Mgmt,
            _ => return None,
        };
        let dest_addr = r.varint().ok()?;
        let src_addr = r.varint().ok()?;
        let (qos_id, dest_cep, src_cep) = match kind {
            PduKind::Mgmt => (0, None, None),
            PduKind::Data | PduKind::Ctrl => {
                let qos_id = r.u8().ok()?;
                let dest_cep = cep(r.varint().ok()?).ok()?;
                let src_cep = cep(r.varint().ok()?).ok()?;
                if kind == PduKind::Data {
                    let _seq = r.varint().ok()?;
                    let _flags = r.u8().ok()?;
                }
                (qos_id, Some(dest_cep), Some(src_cep))
            }
        };
        let ttl_offset = body.len() - r.remaining();
        let ttl = r.u8().ok()?;
        Some(PduView { kind, dest_addr, src_addr, qos_id, dest_cep, src_cep, ttl, ttl_offset })
    }

    /// Byte range of a data PDU's payload within the `frame_len`-byte frame
    /// it was peeked from: everything between the TTL byte and the CRC
    /// trailer.
    pub fn payload_range(&self, frame_len: usize) -> std::ops::Range<usize> {
        // Peek on the same frame guarantees ttl_offset + 1 <= frame_len - 4;
        // clamp so a mismatched frame_len yields an empty range, not a panic.
        let end = frame_len.saturating_sub(4);
        (self.ttl_offset + 1).min(end)..end
    }
}

/// Zero-copy slice of the remaining body bytes out of the original buffer.
fn slice_rest(buf: &Bytes, r: &mut Reader<'_>) -> Bytes {
    let rest = r.rest();
    if rest.is_empty() {
        return Bytes::new();
    }
    // Compute the offset of `rest` within `buf`.
    let base = buf.as_ptr() as usize;
    let off = rest.as_ptr() as usize - base;
    buf.slice(off..off + rest.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_data() -> DataPdu {
        DataPdu {
            dest_addr: 42,
            src_addr: 7,
            qos_id: 2,
            dest_cep: 1001,
            src_cep: 2002,
            seq: 123456,
            flags: FLAG_DRF | FLAG_MORE,
            ttl: 64,
            payload: Bytes::from_static(b"hello dif"),
        }
    }

    #[test]
    fn data_roundtrip() {
        let p = Pdu::Data(sample_data());
        let b = p.encode();
        assert_eq!(Pdu::decode(&b).unwrap(), p);
    }

    #[test]
    fn ctrl_roundtrips() {
        for kind in [
            CtrlKind::Ack { seq: 9 },
            CtrlKind::Nack { seq: 10 },
            CtrlKind::Credit { rwe: 999 },
            CtrlKind::AckCredit { seq: 5, rwe: 105 },
        ] {
            let p = Pdu::Ctrl(CtrlPdu {
                dest_addr: 1,
                src_addr: 2,
                qos_id: 0,
                dest_cep: 3,
                src_cep: 4,
                ttl: 16,
                kind,
            });
            let b = p.encode();
            assert_eq!(Pdu::decode(&b).unwrap(), p);
        }
    }

    #[test]
    fn mgmt_roundtrip_with_zero_addrs() {
        let p = Pdu::Mgmt(MgmtPdu {
            dest_addr: 0,
            src_addr: 0,
            ttl: 1,
            payload: Bytes::from_static(b"cdap"),
        });
        let b = p.encode();
        assert_eq!(Pdu::decode(&b).unwrap(), p);
    }

    #[test]
    fn ttl_decrements_and_floors() {
        let mut p = Pdu::Data(DataPdu { ttl: 1, ..sample_data() });
        assert!(p.decrement_ttl());
        assert_eq!(p.ttl(), 0);
        assert!(!p.decrement_ttl());
    }

    #[test]
    fn corrupt_pdu_rejected() {
        let b = Pdu::Data(sample_data()).encode();
        let mut bad = b.to_vec();
        bad[3] ^= 0xFF;
        assert_eq!(Pdu::decode(&Bytes::from(bad)).err(), Some(WireError::BadChecksum));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut w = Writer::new();
        w.u8(WIRE_VERSION).u8(0x7F);
        let b = w.finish_with_crc();
        assert_eq!(Pdu::decode(&b).err(), Some(WireError::Invalid("pdu type")));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut w = Writer::new();
        w.u8(9).u8(T_DATA);
        let b = w.finish_with_crc();
        assert_eq!(Pdu::decode(&b).err(), Some(WireError::BadVersion(9)));
    }

    #[test]
    fn overhead_is_modest() {
        let p = Pdu::Data(sample_data());
        // varint fields keep small-address headers compact.
        assert!(p.overhead() <= 24, "overhead {}", p.overhead());
    }

    #[test]
    fn payload_is_zero_copy() {
        let p = Pdu::Data(sample_data());
        let b = p.encode();
        let d = match Pdu::decode(&b).unwrap() {
            Pdu::Data(d) => d,
            _ => unreachable!(),
        };
        // Same backing allocation: pointer lies within the encoded buffer.
        let base = b.as_ptr() as usize;
        let pp = d.payload.as_ptr() as usize;
        assert!(pp >= base && pp < base + b.len());
    }

    /// Build one of the three PDU types from flat proptest draws.
    #[allow(clippy::too_many_arguments)]
    fn build_pdu(
        k: u8,
        dest_addr: u64,
        src_addr: u64,
        qos_id: u8,
        dest_cep: u32,
        src_cep: u32,
        seq: u64,
        flags: u8,
        ttl: u8,
        ck: u8,
        rwe: u64,
        payload: Vec<u8>,
    ) -> Pdu {
        match k % 3 {
            0 => Pdu::Data(DataPdu {
                dest_addr,
                src_addr,
                qos_id,
                dest_cep,
                src_cep,
                seq,
                flags,
                ttl,
                payload: Bytes::from(payload),
            }),
            1 => Pdu::Ctrl(CtrlPdu {
                dest_addr,
                src_addr,
                qos_id,
                dest_cep,
                src_cep,
                ttl,
                kind: match ck % 4 {
                    0 => CtrlKind::Ack { seq },
                    1 => CtrlKind::Nack { seq },
                    2 => CtrlKind::Credit { rwe },
                    _ => CtrlKind::AckCredit { seq, rwe },
                },
            }),
            _ => Pdu::Mgmt(MgmtPdu { dest_addr, src_addr, ttl, payload: Bytes::from(payload) }),
        }
    }

    /// The peeked view must agree with the decoded PDU on every shared field.
    fn assert_view_matches(v: &PduView, p: &Pdu, frame: &[u8]) {
        assert_eq!(v.dest_addr, p.dest_addr());
        assert_eq!(v.src_addr, p.src_addr());
        assert_eq!(v.qos_id, p.qos_id());
        assert_eq!(v.ttl, p.ttl());
        assert_eq!(frame[v.ttl_offset], p.ttl(), "ttl_offset must point at the TTL byte");
        match p {
            Pdu::Data(d) => {
                assert_eq!(v.kind, PduKind::Data);
                assert_eq!(v.dest_cep, Some(d.dest_cep));
                assert_eq!(v.src_cep, Some(d.src_cep));
                assert_eq!(
                    &frame[v.payload_range(frame.len())],
                    &d.payload[..],
                    "payload_range must span exactly the payload"
                );
            }
            Pdu::Ctrl(c) => {
                assert_eq!(v.kind, PduKind::Ctrl);
                assert_eq!(v.dest_cep, Some(c.dest_cep));
                assert_eq!(v.src_cep, Some(c.src_cep));
            }
            Pdu::Mgmt(_) => {
                assert_eq!(v.kind, PduKind::Mgmt);
                assert_eq!(v.dest_cep, None);
                assert_eq!(v.src_cep, None);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_peek_matches_every_encoder_frame(
            k in 0u8..3, dest_addr in any::<u64>(), src_addr in any::<u64>(),
            qos_id in any::<u8>(), dest_cep in any::<u32>(), src_cep in any::<u32>(),
            seq in any::<u64>(), flags in 0u8..8, ttl in any::<u8>(),
            ck in 0u8..4, rwe in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let p = build_pdu(
                k, dest_addr, src_addr, qos_id, dest_cep, src_cep, seq, flags, ttl, ck, rwe,
                payload,
            );
            let b = p.encode();
            let v = PduView::peek(&b).expect("peek accepts every encoder-produced frame");
            assert_view_matches(&v, &p, &b);
        }

        #[test]
        fn prop_peek_never_panics_and_is_decode_consistent(
            data in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let b = Bytes::from(data);
            let peek = PduView::peek(&b);
            // One-directional agreement: decode-accept ⟹ peek-accept with the
            // same fields; peek-reject ⟹ decode-reject. (Peek skips the CRC
            // and suffix checks, so it may accept frames decode rejects.)
            if let Ok(p) = Pdu::decode(&b) {
                let v = peek.expect("decode accepted, peek must too");
                assert_view_matches(&v, &p, &b);
            }
        }

        #[test]
        fn prop_peek_agrees_on_checksummed_bytes(
            body in proptest::collection::vec(any::<u8>(), 0..64),
            steer in 0u8..2,
        ) {
            // Append a valid trailer so decode gets past the CRC and the
            // structural accept/reject sets are actually exercised; steer
            // half the cases into valid version+tag prefixes.
            let mut body = body;
            if steer == 1 && body.len() >= 2 {
                body[0] = WIRE_VERSION;
                body[1] = 0x81 + (body[1] % 3);
            }
            let mut f = body.clone();
            f.extend_from_slice(&crate::crc::crc32(&body).to_be_bytes());
            let b = Bytes::from(f);
            let peek = PduView::peek(&b);
            if let Ok(p) = Pdu::decode(&b) {
                let v = peek.expect("decode accepted, peek must too");
                assert_view_matches(&v, &p, &b);
            }
        }

        #[test]
        fn prop_relay_patch_equals_decode_reencode(
            k in 0u8..3, dest_addr in any::<u64>(), src_addr in any::<u64>(),
            qos_id in any::<u8>(), dest_cep in any::<u32>(), src_cep in any::<u32>(),
            seq in any::<u64>(), flags in 0u8..8, ttl in 1u8..=255,
            ck in 0u8..4, rwe in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let p = build_pdu(
                k, dest_addr, src_addr, qos_id, dest_cep, src_cep, seq, flags, ttl, ck, rwe,
                payload,
            );
            let frame = p.encode();
            // Fast path: patch the TTL byte and CRC trailer in place on a
            // clone, exactly as the relay does.
            let mut fast = frame.clone();
            let v = PduView::peek(&fast).expect("encoder frame peeks");
            let body_len = fast.len() - 4;
            let old_crc =
                u32::from_be_bytes([fast[body_len], fast[body_len + 1], fast[body_len + 2],
                    fast[body_len + 3]]);
            let new_crc =
                crate::crc::crc32_patch(old_crc, body_len - 1 - v.ttl_offset, v.ttl, v.ttl - 1);
            let buf = fast.make_mut();
            buf[v.ttl_offset] = v.ttl - 1;
            buf[body_len..].copy_from_slice(&new_crc.to_be_bytes());
            // Slow path: full decode → decrement → re-encode.
            let mut q = Pdu::decode(&frame).unwrap();
            prop_assert!(q.decrement_ttl());
            let slow = q.encode();
            prop_assert_eq!(&fast[..], &slow[..]);
            // Copy-on-write: the shared original is untouched.
            prop_assert_eq!(&frame[..], &p.encode()[..]);
            // And the patched frame still carries a valid checksum.
            prop_assert!(Pdu::decode(&fast).is_ok());
        }

        #[test]
        fn prop_encode_with_payload_crc_is_byte_identical(
            dest_addr in any::<u64>(), src_addr in any::<u64>(),
            qos_id in any::<u8>(), dest_cep in any::<u32>(), src_cep in any::<u32>(),
            seq in any::<u64>(), flags in 0u8..8, ttl in any::<u8>(),
            inner in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            // The shim-wrap shape: the payload is itself a CRC-trailed
            // frame, so its sum is recovered O(1) from its own trailer.
            let trailer = crate::crc::crc32(&inner);
            let mut payload = inner;
            payload.extend_from_slice(&trailer.to_be_bytes());
            let payload_crc = crate::crc::crc32_of_trailed(trailer);
            prop_assert_eq!(payload_crc, crate::crc::crc32(&payload));
            let d = DataPdu {
                dest_addr, src_addr, qos_id,
                dest_cep: dest_cep as CepId, src_cep: src_cep as CepId,
                seq, flags, ttl,
                payload: Bytes::from(payload),
            };
            let fast = d.encode_with_payload_crc(payload_crc);
            let slow = Pdu::Data(d).encode();
            prop_assert_eq!(&fast[..], &slow[..]);
        }

        #[test]
        fn prop_data_roundtrip(
            dest_addr in any::<u64>(), src_addr in any::<u64>(),
            qos_id in any::<u8>(), dest_cep in any::<u32>(), src_cep in any::<u32>(),
            seq in any::<u64>(), flags in 0u8..8, ttl in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = Pdu::Data(DataPdu {
                dest_addr, src_addr, qos_id, dest_cep, src_cep, seq, flags, ttl,
                payload: Bytes::from(payload),
            });
            let b = p.encode();
            prop_assert_eq!(Pdu::decode(&b).unwrap(), p);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Pdu::decode(&Bytes::from(data));
        }
    }
}
