//! EFCP PDU syntax: the data-transfer (DTP) and transfer-control (DTCP)
//! PDUs exchanged between IPC processes of one DIF, plus the management PDU
//! that carries CDAP between layer-management tasks.
//!
//! Addresses here are *internal to a DIF* (the paper's §3.2: "addresses …
//! are internal identifiers used by the members of the DIF"); nothing in
//! this format is visible to applications.

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use bytes::Bytes;

/// An IPC-process address, meaningful only within one DIF. Address 0 is
/// reserved to mean "unaddressed / link-local next hop" and is used during
/// enrollment before an address has been assigned.
pub type Addr = u64;
/// A connection-endpoint id, local to one IPC process.
pub type CepId = u32;
/// A DTP sequence number.
pub type SeqNum = u64;

/// Wire format version implemented by this crate.
pub const WIRE_VERSION: u8 = 1;

/// Default initial TTL for relayed PDUs.
pub const DEFAULT_TTL: u8 = 64;

/// Flag bit: Data Run Flag — first PDU of a new run (fresh connection state).
pub const FLAG_DRF: u8 = 0x01;
/// Flag bit: this PDU is a fragment and more fragments of the SDU follow.
pub const FLAG_MORE: u8 = 0x02;
/// Flag bit: explicit congestion notification (set by relays under pressure).
pub const FLAG_ECN: u8 = 0x04;
/// Flag bit: this PDU carries the *first* fragment of an SDU (set together
/// with a clear `FLAG_MORE` on unfragmented SDUs). Lets receivers on
/// unreliable flows resynchronize SDU boundaries after loss.
pub const FLAG_FIRST: u8 = 0x08;

/// A data-transfer PDU (DTP).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataPdu {
    /// Destination IPC-process address within the DIF.
    pub dest_addr: Addr,
    /// Source IPC-process address within the DIF.
    pub src_addr: Addr,
    /// QoS cube id the flow belongs to (selects relay queue and policies).
    pub qos_id: u8,
    /// Destination connection endpoint.
    pub dest_cep: CepId,
    /// Source connection endpoint.
    pub src_cep: CepId,
    /// Sequence number.
    pub seq: SeqNum,
    /// OR of the `FLAG_*` bits.
    pub flags: u8,
    /// Remaining relay hops; decremented by each relay.
    pub ttl: u8,
    /// User data (possibly one fragment of an SDU).
    pub payload: Bytes,
}

/// The control content of a DTCP PDU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlKind {
    /// Cumulative acknowledgement: everything `< seq` has been delivered.
    Ack {
        /// Next expected sequence number.
        seq: SeqNum,
    },
    /// Selective negative acknowledgement of one missing PDU.
    Nack {
        /// The missing sequence number.
        seq: SeqNum,
    },
    /// Flow-control only: advance the sender's right window edge.
    Credit {
        /// New right window edge (highest sendable seq, exclusive).
        rwe: SeqNum,
    },
    /// Combined ack + credit, the common case.
    AckCredit {
        /// Next expected sequence number.
        seq: SeqNum,
        /// New right window edge (exclusive).
        rwe: SeqNum,
    },
}

/// A transfer-control (DTCP) PDU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtrlPdu {
    /// Destination IPC-process address within the DIF.
    pub dest_addr: Addr,
    /// Source IPC-process address within the DIF.
    pub src_addr: Addr,
    /// QoS cube id of the controlled flow.
    pub qos_id: u8,
    /// Destination connection endpoint.
    pub dest_cep: CepId,
    /// Source connection endpoint.
    pub src_cep: CepId,
    /// Remaining relay hops.
    pub ttl: u8,
    /// The control information.
    pub kind: CtrlKind,
}

/// A management PDU carrying a CDAP message between the layer-management
/// tasks of two IPC processes. Delivery is datagram (management protocols
/// are idempotent or retried); relayed like data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MgmtPdu {
    /// Destination IPC-process address, or 0 for "the IPC process at the
    /// other end of this (N-1) flow" (used during enrollment).
    pub dest_addr: Addr,
    /// Source IPC-process address, or 0 before an address is assigned.
    pub src_addr: Addr,
    /// Remaining relay hops.
    pub ttl: u8,
    /// Encoded CDAP message.
    pub payload: Bytes,
}

/// Any PDU of a DIF, as relayed by the RMT and delivered to EFCP instances
/// or the management AE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pdu {
    /// Data transfer.
    Data(DataPdu),
    /// Transfer control.
    Ctrl(CtrlPdu),
    /// Layer management (CDAP).
    Mgmt(MgmtPdu),
}

const T_DATA: u8 = 0x81;
const T_CTRL: u8 = 0x82;
const T_MGMT: u8 = 0x83;

const CK_ACK: u8 = 1;
const CK_NACK: u8 = 2;
const CK_CREDIT: u8 = 3;
const CK_ACK_CREDIT: u8 = 4;

impl Pdu {
    /// Destination address, for relay decisions.
    pub fn dest_addr(&self) -> Addr {
        match self {
            Pdu::Data(p) => p.dest_addr,
            Pdu::Ctrl(p) => p.dest_addr,
            Pdu::Mgmt(p) => p.dest_addr,
        }
    }

    /// Source address.
    pub fn src_addr(&self) -> Addr {
        match self {
            Pdu::Data(p) => p.src_addr,
            Pdu::Ctrl(p) => p.src_addr,
            Pdu::Mgmt(p) => p.src_addr,
        }
    }

    /// QoS cube id (management PDUs ride the highest-priority cube, 0).
    pub fn qos_id(&self) -> u8 {
        match self {
            Pdu::Data(p) => p.qos_id,
            Pdu::Ctrl(p) => p.qos_id,
            Pdu::Mgmt(_) => 0,
        }
    }

    /// Remaining TTL.
    pub fn ttl(&self) -> u8 {
        match self {
            Pdu::Data(p) => p.ttl,
            Pdu::Ctrl(p) => p.ttl,
            Pdu::Mgmt(p) => p.ttl,
        }
    }

    /// Decrement TTL, returning `false` if it was already zero (drop).
    pub fn decrement_ttl(&mut self) -> bool {
        let ttl = match self {
            Pdu::Data(p) => &mut p.ttl,
            Pdu::Ctrl(p) => &mut p.ttl,
            Pdu::Mgmt(p) => &mut p.ttl,
        };
        if *ttl == 0 {
            return false;
        }
        *ttl -= 1;
        true
    }

    /// Encode to bytes with version byte and trailing CRC-32.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(32 + self.payload_len());
        w.u8(WIRE_VERSION);
        match self {
            Pdu::Data(p) => {
                w.u8(T_DATA)
                    .varint(p.dest_addr)
                    .varint(p.src_addr)
                    .u8(p.qos_id)
                    .varint(p.dest_cep as u64)
                    .varint(p.src_cep as u64)
                    .varint(p.seq)
                    .u8(p.flags)
                    .u8(p.ttl)
                    .raw(&p.payload);
            }
            Pdu::Ctrl(p) => {
                w.u8(T_CTRL)
                    .varint(p.dest_addr)
                    .varint(p.src_addr)
                    .u8(p.qos_id)
                    .varint(p.dest_cep as u64)
                    .varint(p.src_cep as u64)
                    .u8(p.ttl);
                match p.kind {
                    CtrlKind::Ack { seq } => {
                        w.u8(CK_ACK).varint(seq);
                    }
                    CtrlKind::Nack { seq } => {
                        w.u8(CK_NACK).varint(seq);
                    }
                    CtrlKind::Credit { rwe } => {
                        w.u8(CK_CREDIT).varint(rwe);
                    }
                    CtrlKind::AckCredit { seq, rwe } => {
                        w.u8(CK_ACK_CREDIT).varint(seq).varint(rwe);
                    }
                }
            }
            Pdu::Mgmt(p) => {
                w.u8(T_MGMT).varint(p.dest_addr).varint(p.src_addr).u8(p.ttl).raw(&p.payload);
            }
        }
        w.finish_with_crc()
    }

    /// Decode from bytes, verifying the CRC. The payload of data/management
    /// PDUs is a zero-copy slice of `buf`.
    pub fn decode(buf: &Bytes) -> Result<Pdu, WireError> {
        let mut r = Reader::new_checked(buf)?;
        let v = r.u8()?;
        if v != WIRE_VERSION {
            return Err(WireError::BadVersion(v));
        }
        let t = r.u8()?;
        match t {
            T_DATA => {
                let dest_addr = r.varint()?;
                let src_addr = r.varint()?;
                let qos_id = r.u8()?;
                let dest_cep = cep(r.varint()?)?;
                let src_cep = cep(r.varint()?)?;
                let seq = r.varint()?;
                let flags = r.u8()?;
                let ttl = r.u8()?;
                let payload = slice_rest(buf, &mut r);
                Ok(Pdu::Data(DataPdu {
                    dest_addr,
                    src_addr,
                    qos_id,
                    dest_cep,
                    src_cep,
                    seq,
                    flags,
                    ttl,
                    payload,
                }))
            }
            T_CTRL => {
                let dest_addr = r.varint()?;
                let src_addr = r.varint()?;
                let qos_id = r.u8()?;
                let dest_cep = cep(r.varint()?)?;
                let src_cep = cep(r.varint()?)?;
                let ttl = r.u8()?;
                let kind = match r.u8()? {
                    CK_ACK => CtrlKind::Ack { seq: r.varint()? },
                    CK_NACK => CtrlKind::Nack { seq: r.varint()? },
                    CK_CREDIT => CtrlKind::Credit { rwe: r.varint()? },
                    CK_ACK_CREDIT => CtrlKind::AckCredit { seq: r.varint()?, rwe: r.varint()? },
                    _ => return Err(WireError::Invalid("ctrl kind")),
                };
                r.expect_end()?;
                Ok(Pdu::Ctrl(CtrlPdu { dest_addr, src_addr, qos_id, dest_cep, src_cep, ttl, kind }))
            }
            T_MGMT => {
                let dest_addr = r.varint()?;
                let src_addr = r.varint()?;
                let ttl = r.u8()?;
                let payload = slice_rest(buf, &mut r);
                Ok(Pdu::Mgmt(MgmtPdu { dest_addr, src_addr, ttl, payload }))
            }
            _ => Err(WireError::Invalid("pdu type")),
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            Pdu::Data(p) => p.payload.len(),
            Pdu::Mgmt(p) => p.payload.len(),
            Pdu::Ctrl(_) => 0,
        }
    }

    /// Encoded header + trailer overhead for this PDU (everything except the
    /// payload). Used by the header-overhead experiment.
    pub fn overhead(&self) -> usize {
        self.encode().len() - self.payload_len()
    }
}

fn cep(v: u64) -> Result<CepId, WireError> {
    CepId::try_from(v).map_err(|_| WireError::Invalid("cep id"))
}

/// Zero-copy slice of the remaining body bytes out of the original buffer.
fn slice_rest(buf: &Bytes, r: &mut Reader<'_>) -> Bytes {
    let rest = r.rest();
    if rest.is_empty() {
        return Bytes::new();
    }
    // Compute the offset of `rest` within `buf`.
    let base = buf.as_ptr() as usize;
    let off = rest.as_ptr() as usize - base;
    buf.slice(off..off + rest.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_data() -> DataPdu {
        DataPdu {
            dest_addr: 42,
            src_addr: 7,
            qos_id: 2,
            dest_cep: 1001,
            src_cep: 2002,
            seq: 123456,
            flags: FLAG_DRF | FLAG_MORE,
            ttl: 64,
            payload: Bytes::from_static(b"hello dif"),
        }
    }

    #[test]
    fn data_roundtrip() {
        let p = Pdu::Data(sample_data());
        let b = p.encode();
        assert_eq!(Pdu::decode(&b).unwrap(), p);
    }

    #[test]
    fn ctrl_roundtrips() {
        for kind in [
            CtrlKind::Ack { seq: 9 },
            CtrlKind::Nack { seq: 10 },
            CtrlKind::Credit { rwe: 999 },
            CtrlKind::AckCredit { seq: 5, rwe: 105 },
        ] {
            let p = Pdu::Ctrl(CtrlPdu {
                dest_addr: 1,
                src_addr: 2,
                qos_id: 0,
                dest_cep: 3,
                src_cep: 4,
                ttl: 16,
                kind,
            });
            let b = p.encode();
            assert_eq!(Pdu::decode(&b).unwrap(), p);
        }
    }

    #[test]
    fn mgmt_roundtrip_with_zero_addrs() {
        let p = Pdu::Mgmt(MgmtPdu {
            dest_addr: 0,
            src_addr: 0,
            ttl: 1,
            payload: Bytes::from_static(b"cdap"),
        });
        let b = p.encode();
        assert_eq!(Pdu::decode(&b).unwrap(), p);
    }

    #[test]
    fn ttl_decrements_and_floors() {
        let mut p = Pdu::Data(DataPdu { ttl: 1, ..sample_data() });
        assert!(p.decrement_ttl());
        assert_eq!(p.ttl(), 0);
        assert!(!p.decrement_ttl());
    }

    #[test]
    fn corrupt_pdu_rejected() {
        let b = Pdu::Data(sample_data()).encode();
        let mut bad = b.to_vec();
        bad[3] ^= 0xFF;
        assert_eq!(Pdu::decode(&Bytes::from(bad)).err(), Some(WireError::BadChecksum));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut w = Writer::new();
        w.u8(WIRE_VERSION).u8(0x7F);
        let b = w.finish_with_crc();
        assert_eq!(Pdu::decode(&b).err(), Some(WireError::Invalid("pdu type")));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut w = Writer::new();
        w.u8(9).u8(T_DATA);
        let b = w.finish_with_crc();
        assert_eq!(Pdu::decode(&b).err(), Some(WireError::BadVersion(9)));
    }

    #[test]
    fn overhead_is_modest() {
        let p = Pdu::Data(sample_data());
        // varint fields keep small-address headers compact.
        assert!(p.overhead() <= 24, "overhead {}", p.overhead());
    }

    #[test]
    fn payload_is_zero_copy() {
        let p = Pdu::Data(sample_data());
        let b = p.encode();
        let d = match Pdu::decode(&b).unwrap() {
            Pdu::Data(d) => d,
            _ => unreachable!(),
        };
        // Same backing allocation: pointer lies within the encoded buffer.
        let base = b.as_ptr() as usize;
        let pp = d.payload.as_ptr() as usize;
        assert!(pp >= base && pp < base + b.len());
    }

    proptest! {
        #[test]
        fn prop_data_roundtrip(
            dest_addr in any::<u64>(), src_addr in any::<u64>(),
            qos_id in any::<u8>(), dest_cep in any::<u32>(), src_cep in any::<u32>(),
            seq in any::<u64>(), flags in 0u8..8, ttl in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = Pdu::Data(DataPdu {
                dest_addr, src_addr, qos_id, dest_cep, src_cep, seq, flags, ttl,
                payload: Bytes::from(payload),
            });
            let b = p.encode();
            prop_assert_eq!(Pdu::decode(&b).unwrap(), p);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Pdu::decode(&Bytes::from(data));
        }
    }
}
