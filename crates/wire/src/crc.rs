//! CRC-32 (IEEE 802.3 polynomial), slice-by-8 table-driven.
//!
//! Links in the simulator lose frames but never corrupt them, so in normal
//! operation the checksum always verifies; it is kept on the wire for
//! realism, for fault-injection tests, and so the header overhead accounting
//! in the experiments matches a deployable format.
//!
//! Every relayed PDU is checked on arrival and re-summed on departure, so
//! this function dominates the data-plane profile under flow churn (E13).
//! The slice-by-8 kernel folds eight input bytes per step through eight
//! precomputed tables — the same polynomial, the same result for every
//! input as the plain byte-at-a-time loop (pinned by the test vectors),
//! at a fraction of the per-byte cost.

/// Lazily built reflected-polynomial lookup tables. `t[0]` is the classic
/// byte-at-a-time table; `t[k]` maps a byte to its CRC contribution `k`
/// positions earlier in an 8-byte block.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn slice_by_8_matches_byte_at_a_time() {
        // Reference implementation: the classic one-byte loop.
        let reference = |data: &[u8]| -> u32 {
            let t = &tables()[0];
            let mut c = 0xFFFF_FFFFu32;
            for &b in data {
                c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            c ^ 0xFFFF_FFFF
        };
        // Every length 0..=64 exercises the 8-byte kernel and every
        // possible remainder, with non-repeating content.
        let buf: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(167) ^ 0x5A) as u8).collect();
        for len in 0..=buf.len() {
            assert_eq!(crc32(&buf[..len]), reference(&buf[..len]), "len {len}");
        }
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
