//! CRC-32 (IEEE 802.3 polynomial), slice-by-8 table-driven.
//!
//! Links in the simulator lose frames but never corrupt them, so in normal
//! operation the checksum always verifies; it is kept on the wire for
//! realism, for fault-injection tests, and so the header overhead accounting
//! in the experiments matches a deployable format.
//!
//! Every relayed PDU is checked on arrival and re-summed on departure, so
//! this function dominates the data-plane profile under flow churn (E13).
//! The slice-by-8 kernel folds eight input bytes per step through eight
//! precomputed tables — the same polynomial, the same result for every
//! input as the plain byte-at-a-time loop (pinned by the test vectors),
//! at a fraction of the per-byte cost.

/// Lazily built reflected-polynomial lookup tables. `t[0]` is the classic
/// byte-at-a-time table; `t[k]` maps a byte to its CRC contribution `k`
/// positions earlier in an 8-byte block.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// A 32×32 GF(2) linear operator on CRC registers; column `j` is the image
/// of bit `j`.
type Gf2Op = [u32; 32];

fn gf2_apply(m: &Gf2Op, mut v: u32) -> u32 {
    let mut r = 0u32;
    let mut j = 0usize;
    while v != 0 {
        if v & 1 != 0 {
            r ^= m[j];
        }
        v >>= 1;
        j += 1;
    }
    r
}

/// Number of precomputed doubling operators; supports patch distances up to
/// `2^48 - 1` bytes, far beyond any frame the codec can produce.
const ZERO_OPS: usize = 48;

/// Lazily built operators: `ops[k]` advances a CRC *difference* register
/// across `2^k` zero bytes — i.e. multiplication by `x^(8·2^k) mod P` in the
/// reflected representation. Built once by matrix squaring of the one-byte
/// step `v → (v >> 8) ^ t0[v & 0xFF]`.
fn zero_ops() -> &'static [Gf2Op; ZERO_OPS] {
    use std::sync::OnceLock;
    static OPS: OnceLock<[Gf2Op; ZERO_OPS]> = OnceLock::new();
    OPS.get_or_init(|| {
        let t0 = &tables()[0];
        let mut ops = [[0u32; 32]; ZERO_OPS];
        for (j, col) in ops[0].iter_mut().enumerate() {
            let v = 1u32 << j;
            *col = (v >> 8) ^ t0[(v & 0xFF) as usize];
        }
        for k in 1..ZERO_OPS {
            let prev = ops[k - 1];
            for j in 0..32 {
                ops[k][j] = gf2_apply(&prev, prev[j]);
            }
        }
        ops
    })
}

/// Patch a CRC-32 for a single changed byte without re-summing the message.
///
/// `old_crc` is the CRC of the original message; the byte at distance
/// `dist_from_end` from the message's last byte (0 = the final byte itself)
/// changed from `old_byte` to `new_byte`. Returns the CRC of the patched
/// message.
///
/// Why this works: the per-byte register update `r → (r >> 8) ^ t0[(r ^ b)
/// & 0xFF]` is GF(2)-linear jointly in register and data byte, so the
/// *difference* between the two runs' registers is zero until the patched
/// byte, becomes `t0[old ^ new]` there, and then evolves through the
/// remaining `d` bytes exactly as if they were zeros:
/// `new_crc = old_crc ^ x^(8d)·t0[old ^ new] mod P`. The init/xorout
/// constants cancel in the XOR. The zero-byte advance runs in
/// `O(popcount(d))` operator applications via the precomputed doubling
/// table, so patching a frame costs the same whether it is 10 bytes or a
/// megabyte.
pub fn crc32_patch(old_crc: u32, dist_from_end: usize, old_byte: u8, new_byte: u8) -> u32 {
    old_crc ^ zero_advance(tables()[0][(old_byte ^ new_byte) as usize], dist_from_end)
}

/// Advance a raw CRC register across `len` zero bytes — multiplication by
/// `x^(8·len) mod P` in the reflected representation, `O(popcount(len))`
/// operator applications via the doubling table.
fn zero_advance(mut v: u32, len: usize) -> u32 {
    let ops = zero_ops();
    let mut d = len;
    let mut k = 0usize;
    while d != 0 && k < ZERO_OPS {
        if d & 1 != 0 {
            v = gf2_apply(&ops[k], v);
        }
        d >>= 1;
        k += 1;
    }
    v
}

/// CRC-32 of a concatenation from the parts' CRCs, without touching the
/// bytes: `crc32(A ‖ B) = x^(8·|B|)·crc32(A) ⊕ crc32(B) mod P`.
///
/// Why the init/xorout conditioning needs no correction term: with
/// `F(D, i)` the raw register after feeding `D` from initial register `i`,
/// linearity gives `F(B, i) = F(B, 0) ⊕ x^(8·|B|)·i`. Expanding
/// `crc(A‖B) = F(B, F(A, i₀)) ⊕ x₀` and substituting the same identity for
/// `crc(B)` makes both the `i₀` and `x₀` constants cancel in the XOR.
pub fn crc32_combine(crc_a: u32, crc_b: u32, len_b: usize) -> u32 {
    zero_advance(crc_a, len_b) ^ crc_b
}

/// CRC-32 of a self-checksummed frame `body ‖ crc32(body).to_be_bytes()`,
/// given only its trailer value — O(1), four table steps.
///
/// Un-finalizing the trailer (`⊕ 0xFFFF_FFFF`) recovers the register state
/// the summer held after `body`'s last byte; feeding the four trailer bytes
/// from there continues the very computation that produced them.
pub fn crc32_of_trailed(trailer: u32) -> u32 {
    let t = &tables()[0];
    let mut c = trailer ^ 0xFFFF_FFFF;
    for b in trailer.to_be_bytes() {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn slice_by_8_matches_byte_at_a_time() {
        // Reference implementation: the classic one-byte loop.
        let reference = |data: &[u8]| -> u32 {
            let t = &tables()[0];
            let mut c = 0xFFFF_FFFFu32;
            for &b in data {
                c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            c ^ 0xFFFF_FFFF
        };
        // Every length 0..=64 exercises the 8-byte kernel and every
        // possible remainder, with non-repeating content.
        let buf: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(167) ^ 0x5A) as u8).collect();
        for len in 0..=buf.len() {
            assert_eq!(crc32(&buf[..len]), reference(&buf[..len]), "len {len}");
        }
    }

    /// Deterministic non-repeating filler.
    fn filler(len: usize) -> Vec<u8> {
        (0..len as u32).map(|i| (i.wrapping_mul(167) ^ (i >> 8) ^ 0x5A) as u8).collect()
    }

    #[test]
    fn patch_matches_full_resum_every_offset() {
        // Every offset of every length up to 80 pins the patch kernel
        // bitwise-identical to a full re-sum, for two different new values.
        for len in 1..=80usize {
            let orig = filler(len);
            let base = crc32(&orig);
            for off in 0..len {
                let d = len - 1 - off;
                for new in [orig[off] ^ 0xFF, orig[off].wrapping_add(1)] {
                    let mut patched = orig.clone();
                    patched[off] = new;
                    assert_eq!(
                        crc32_patch(base, d, orig[off], new),
                        crc32(&patched),
                        "len {len} off {off} new {new:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn patch_matches_full_resum_large_distances() {
        // Large messages exercise the high doubling operators.
        for len in [1_000usize, 4_099, 70_001] {
            let orig = filler(len);
            let base = crc32(&orig);
            for off in [0, 1, len / 3, len / 2, len - 2, len - 1] {
                let mut patched = orig.clone();
                patched[off] ^= 0xA5;
                assert_eq!(
                    crc32_patch(base, len - 1 - off, orig[off], patched[off]),
                    crc32(&patched),
                    "len {len} off {off}"
                );
            }
        }
    }

    #[test]
    fn patch_same_byte_is_identity() {
        let orig = filler(37);
        let base = crc32(&orig);
        for off in 0..orig.len() {
            assert_eq!(crc32_patch(base, orig.len() - 1 - off, orig[off], orig[off]), base);
        }
    }

    #[test]
    fn combine_matches_full_sum_every_split() {
        // Every split point of several lengths pins crc32_combine
        // bitwise-identical to summing the concatenation directly.
        for len in [0usize, 1, 7, 8, 9, 64, 257, 1_400] {
            let buf = filler(len);
            let whole = crc32(&buf);
            for split in 0..=len {
                let (a, b) = buf.split_at(split);
                assert_eq!(
                    crc32_combine(crc32(a), crc32(b), b.len()),
                    whole,
                    "len {len} split {split}"
                );
            }
        }
    }

    #[test]
    fn trailed_matches_full_sum() {
        // A frame that ends in its own big-endian CRC trailer: the O(1)
        // resume from the trailer equals summing the whole frame.
        for len in [1usize, 5, 37, 360, 1_400] {
            let body = filler(len);
            let trailer = crc32(&body);
            let mut frame = body;
            frame.extend_from_slice(&trailer.to_be_bytes());
            assert_eq!(crc32_of_trailed(trailer), crc32(&frame), "len {len}");
        }
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
