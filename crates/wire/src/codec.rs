//! Byte-level encoding primitives: a growable [`Writer`] and a borrowing
//! [`Reader`], with fixed-width big-endian integers, LEB128 varints, and
//! length-prefixed byte strings.
//!
//! These are the building blocks for every PDU in the suite, and are also
//! exported so higher layers (directory, routing, enrollment) can encode
//! their object values inside CDAP messages.

use crate::error::WireError;
use bytes::Bytes;

/// Append-only encoder.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Writer { buf: Vec::with_capacity(n) }
    }

    /// Append a raw byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }
    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }
    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }
    /// Append a big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }
    /// Append an unsigned LEB128 varint (1..=10 bytes).
    pub fn varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let mut b = (v & 0x7F) as u8;
            v >>= 7;
            if v != 0 {
                b |= 0x80;
            }
            self.buf.push(b);
            if v == 0 {
                break;
            }
        }
        self
    }
    /// Append raw bytes with a varint length prefix.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.varint(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }
    /// Append a UTF-8 string with a varint length prefix.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
    /// Append raw bytes with no length prefix.
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }
    /// Append a boolean as one byte.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }
    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
    /// View of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
    /// Finish, returning the encoded bytes.
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }
    /// Finish with a trailing CRC-32 of everything written.
    pub fn finish_with_crc(mut self) -> Bytes {
        let c = crate::crc::crc32(&self.buf);
        self.buf.extend_from_slice(&c.to_be_bytes());
        Bytes::from(self.buf)
    }
    /// Finish with a caller-supplied CRC-32 trailer. For callers that
    /// derived the sum incrementally (e.g. [`crate::crc::crc32_combine`]);
    /// the value must equal `crc32` of everything written or the frame
    /// will not verify.
    pub fn finish_with_crc_value(mut self, c: u32) -> Bytes {
        self.buf.extend_from_slice(&c.to_be_bytes());
        Bytes::from(self.buf)
    }
}

/// Borrowing decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Decode from `buf` after verifying and stripping a trailing CRC-32.
    pub fn new_checked(buf: &'a [u8]) -> Result<Self, WireError> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        let (body, tail) = buf.split_at(buf.len() - 4);
        let want = u32::from_be_bytes([tail[0], tail[1], tail[2], tail[3]]);
        if crate::crc::crc32(body) != want {
            return Err(WireError::BadChecksum);
        }
        Ok(Reader { buf: body, pos: 0 })
    }

    /// Bytes remaining to be read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    /// Whether the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
    /// Error unless the reader is exhausted.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }
    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }
    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_be_bytes(s.try_into().expect("len 8")))
    }
    /// Read an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }
    /// Read a varint-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(WireError::Truncated);
        }
        self.take(n as usize)
    }
    /// Read a varint-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::Invalid("utf-8 string"))
    }
    /// Read all remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
    /// Read a boolean byte (must be 0 or 1).
    pub fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("boolean")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_fixed_widths() {
        let mut w = Writer::new();
        w.u8(7).u16(0xBEEF).u32(0xDEAD_BEEF).u64(u64::MAX).boolean(true);
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.boolean().unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn varint_edge_cases() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.varint(v);
            let b = w.finish();
            let mut r = Reader::new(&b);
            assert_eq!(r.varint().unwrap(), v, "value {v}");
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes can encode > 64 bits.
        let bad = [0xFFu8; 10];
        let mut r = Reader::new(&bad);
        assert!(matches!(r.varint(), Err(WireError::VarintOverflow) | Err(WireError::Truncated)));
    }

    #[test]
    fn string_and_bytes() {
        let mut w = Writer::new();
        w.string("rina").bytes(&[1, 2, 3]).raw(&[9]);
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.string().unwrap(), "rina");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.rest(), &[9]);
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.string(), Err(WireError::Invalid("utf-8 string")));
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.u32(5);
        let b = w.finish();
        let mut r = Reader::new(&b[..2]);
        assert_eq!(r.u32(), Err(WireError::Truncated));
    }

    #[test]
    fn crc_frame_roundtrip_and_tamper() {
        let mut w = Writer::new();
        w.string("payload");
        let b = w.finish_with_crc();
        assert!(Reader::new_checked(&b).is_ok());
        let mut tampered = b.to_vec();
        tampered[1] ^= 0x40;
        assert_eq!(Reader::new_checked(&tampered).err(), Some(WireError::BadChecksum));
        assert_eq!(Reader::new_checked(&b[..3]).err(), Some(WireError::Truncated));
    }

    #[test]
    fn boolean_strict() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.boolean(), Err(WireError::Invalid("boolean")));
    }

    proptest! {
        #[test]
        fn prop_varint_roundtrip(v in any::<u64>()) {
            let mut w = Writer::new();
            w.varint(v);
            let b = w.finish();
            let mut r = Reader::new(&b);
            prop_assert_eq!(r.varint().unwrap(), v);
            prop_assert!(r.is_empty());
        }

        #[test]
        fn prop_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut w = Writer::new();
            w.bytes(&data);
            let b = w.finish_with_crc();
            let mut r = Reader::new_checked(&b).unwrap();
            prop_assert_eq!(r.bytes().unwrap(), &data[..]);
        }

        #[test]
        fn prop_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Whatever the bytes, reading must fail cleanly, not panic.
            let mut r = Reader::new(&data);
            let _ = r.varint();
            let mut r = Reader::new(&data);
            let _ = r.string();
            let _ = Reader::new_checked(&data);
        }
    }
}
