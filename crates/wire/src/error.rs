//! Decode errors shared by all wire formats.

use std::fmt;

/// Why a byte string failed to parse as a PDU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field being read.
    Truncated,
    /// The version byte is not one this implementation speaks.
    BadVersion(u8),
    /// The trailing CRC32 did not match the computed value.
    BadChecksum,
    /// A varint exceeded 64 bits or 10 bytes.
    VarintOverflow,
    /// A field held a value that is not valid for its type.
    Invalid(&'static str),
    /// Trailing bytes remained after a complete message.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated PDU"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}
impl std::error::Error for WireError {}
