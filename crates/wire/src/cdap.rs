//! A compact CDAP-like management protocol syntax.
//!
//! The paper (§8) anticipates an ASN.1-style abstract syntax for layer
//! management so that object semantics are decoupled from encoding. We keep
//! that split: this module defines only the *envelope* — an operation on a
//! named object, with an opaque encoded value. The object semantics
//! (enrollment, directory, routing, flow allocation) live in `rina` and
//! encode their values with [`crate::codec`] primitives.

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use bytes::Bytes;

/// CDAP operation codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// Open an application connection (enrollment phase 1); carries auth.
    Connect,
    /// Response to `Connect`.
    ConnectR,
    /// Close the application connection.
    Release,
    /// Create an object (e.g. a flow, a directory registration).
    Create,
    /// Response to `Create`.
    CreateR,
    /// Delete an object (e.g. deallocate a flow).
    Delete,
    /// Response to `Delete`.
    DeleteR,
    /// Read an object's value.
    Read,
    /// Response to `Read`.
    ReadR,
    /// Write an object's value (e.g. disseminate routing state).
    Write,
    /// Response to `Write`.
    WriteR,
    /// Start an action object.
    Start,
    /// Response to `Start`.
    StartR,
    /// Stop an action object.
    Stop,
    /// Response to `Stop`.
    StopR,
}

impl OpCode {
    fn to_u8(self) -> u8 {
        match self {
            OpCode::Connect => 1,
            OpCode::ConnectR => 2,
            OpCode::Release => 3,
            OpCode::Create => 4,
            OpCode::CreateR => 5,
            OpCode::Delete => 6,
            OpCode::DeleteR => 7,
            OpCode::Read => 8,
            OpCode::ReadR => 9,
            OpCode::Write => 10,
            OpCode::WriteR => 11,
            OpCode::Start => 12,
            OpCode::StartR => 13,
            OpCode::Stop => 14,
            OpCode::StopR => 15,
        }
    }
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => OpCode::Connect,
            2 => OpCode::ConnectR,
            3 => OpCode::Release,
            4 => OpCode::Create,
            5 => OpCode::CreateR,
            6 => OpCode::Delete,
            7 => OpCode::DeleteR,
            8 => OpCode::Read,
            9 => OpCode::ReadR,
            10 => OpCode::Write,
            11 => OpCode::WriteR,
            12 => OpCode::Start,
            13 => OpCode::StartR,
            14 => OpCode::Stop,
            15 => OpCode::StopR,
            _ => return Err(WireError::Invalid("cdap opcode")),
        })
    }

    /// Whether this opcode is a response to a request.
    pub fn is_response(self) -> bool {
        matches!(
            self,
            OpCode::ConnectR
                | OpCode::CreateR
                | OpCode::DeleteR
                | OpCode::ReadR
                | OpCode::WriteR
                | OpCode::StartR
                | OpCode::StopR
        )
    }
}

/// Result code 0: success. Anything else is protocol-specific failure.
pub const RES_OK: i32 = 0;

/// A CDAP message: an operation applied to a named object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CdapMsg {
    /// The operation.
    pub op: OpCode,
    /// Correlates responses with requests; chosen by the requester.
    pub invoke_id: u32,
    /// Class of the addressed object (e.g. `"flow"`, `"dir-entry"`).
    pub obj_class: String,
    /// Instance name of the addressed object (e.g. `"/dif/flows/17"`).
    pub obj_name: String,
    /// Result code on responses; [`RES_OK`] on requests.
    pub result: i32,
    /// Opaque encoded object value (semantics defined by `obj_class`).
    pub value: Bytes,
}

impl CdapMsg {
    /// A request message with the given operation and object coordinates.
    pub fn request(
        op: OpCode,
        invoke_id: u32,
        obj_class: &str,
        obj_name: &str,
        value: Bytes,
    ) -> Self {
        debug_assert!(!op.is_response());
        CdapMsg {
            op,
            invoke_id,
            obj_class: obj_class.to_string(),
            obj_name: obj_name.to_string(),
            result: RES_OK,
            value,
        }
    }

    /// The response to this request, echoing object coordinates.
    pub fn response(&self, op: OpCode, result: i32, value: Bytes) -> Self {
        debug_assert!(op.is_response());
        CdapMsg {
            op,
            invoke_id: self.invoke_id,
            obj_class: self.obj_class.clone(),
            obj_name: self.obj_name.clone(),
            result,
            value,
        }
    }

    /// Encode to bytes (no CRC: CDAP rides inside a checksummed PDU).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_capacity(
            24 + self.obj_class.len() + self.obj_name.len() + self.value.len(),
        );
        w.u8(self.op.to_u8())
            .varint(self.invoke_id as u64)
            .string(&self.obj_class)
            .string(&self.obj_name)
            .varint(zigzag(self.result))
            .bytes(&self.value);
        w.finish()
    }

    /// Decode from bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let op = OpCode::from_u8(r.u8()?)?;
        let invoke_id = u32::try_from(r.varint()?).map_err(|_| WireError::Invalid("invoke id"))?;
        let obj_class = r.string()?.to_string();
        let obj_name = r.string()?.to_string();
        let result = unzigzag(r.varint()?);
        let value = Bytes::copy_from_slice(r.bytes()?);
        r.expect_end()?;
        Ok(CdapMsg { op, invoke_id, obj_class, obj_name, result, value })
    }
}

fn zigzag(v: i32) -> u64 {
    ((v as i64) << 1 ^ ((v as i64) >> 63)) as u64
}
fn unzigzag(v: u64) -> i32 {
    ((v >> 1) as i64 ^ -((v & 1) as i64)) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_request_response() {
        let req = CdapMsg::request(
            OpCode::Create,
            77,
            "flow",
            "/difs/net/flows",
            Bytes::from_static(b"spec"),
        );
        let b = req.encode();
        assert_eq!(CdapMsg::decode(&b).unwrap(), req);

        let resp = req.response(OpCode::CreateR, -3, Bytes::new());
        let b = resp.encode();
        let d = CdapMsg::decode(&b).unwrap();
        assert_eq!(d.result, -3);
        assert_eq!(d.invoke_id, 77);
        assert_eq!(d.obj_name, "/difs/net/flows");
    }

    #[test]
    fn zigzag_symmetry() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn opcode_exhaustive_roundtrip() {
        for v in 1..=15u8 {
            let op = OpCode::from_u8(v).unwrap();
            assert_eq!(op.to_u8(), v);
        }
        assert!(OpCode::from_u8(0).is_err());
        assert!(OpCode::from_u8(16).is_err());
    }

    #[test]
    fn response_predicate() {
        assert!(!OpCode::Connect.is_response());
        assert!(OpCode::ConnectR.is_response());
        assert!(!OpCode::Write.is_response());
        assert!(OpCode::WriteR.is_response());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let req = CdapMsg::request(OpCode::Read, 1, "c", "n", Bytes::new());
        let mut b = req.encode().to_vec();
        b.push(0);
        assert_eq!(CdapMsg::decode(&b).err(), Some(WireError::TrailingBytes));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            op in 1u8..=15,
            invoke_id in any::<u32>(),
            obj_class in "[a-z/_-]{0,20}",
            obj_name in "[a-zA-Z0-9/._-]{0,40}",
            result in any::<i32>(),
            value in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            let m = CdapMsg {
                op: OpCode::from_u8(op).unwrap(),
                invoke_id,
                obj_class,
                obj_name,
                result,
                value: Bytes::from(value),
            };
            prop_assert_eq!(CdapMsg::decode(&m.encode()).unwrap(), m);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..96)) {
            let _ = CdapMsg::decode(&data);
        }
    }
}
