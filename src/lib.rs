//! # netipc — "Networking is IPC", reproduced in Rust
//!
//! Umbrella crate for the reproduction of Day, Matta & Mattar,
//! *"Networking is IPC": A Guiding Principle to a Better Internet*
//! (BUCS-TR-2008-019, 2008). It re-exports the component crates and hosts
//! the runnable examples and cross-crate integration tests.
//!
//! * [`sim`] — deterministic discrete-event network substrate.
//! * [`wire`] — PDU syntax (EFCP, CDAP-like management envelope).
//! * [`efcp`] — error- and flow-control protocol state machines.
//! * [`rib`] — resource information base + RIEP dissemination.
//! * [`rina`] — the recursive-IPC architecture itself (DIFs, IPC
//!   processes, enrollment, flow allocation, relaying, routing).
//! * [`inet`] — the current-Internet baseline stack the paper argues
//!   against (flat addresses, well-known ports, DNS, Mobile-IP).

#![forbid(unsafe_code)]

pub use inet;
pub use rina;
pub use rina_efcp as efcp;
pub use rina_rib as rib;
pub use rina_sim as sim;
pub use rina_wire as wire;
