//! Workspace-level integration: both stacks drive the same simulator
//! substrate, deterministically.

use netipc::rina::apps::{EchoApp, PingApp};
use netipc::rina::prelude::*;

/// The two stacks share one substrate: a RINA internetwork and an inet
/// internetwork can run side by side in one process (separate sims),
/// both fully deterministic.
#[test]
fn determinism_across_stacks() {
    let run_rina = |seed| {
        let mut b = NetBuilder::new(seed);
        let h1 = b.node("h1");
        let h2 = b.node("h2");
        let l = b.link(h1, h2, LinkCfg::wired().with_loss(LossModel::Bernoulli(0.05)));
        let d = b.dif(DifConfig::new("net"));
        b.join(d, h1);
        b.join(d, h2);
        b.adjacency_over_link(d, h1, h2, l);
        b.app(h2, AppName::new("echo"), d, EchoApp::default());
        let ping = b.app(
            h1,
            AppName::new("ping"),
            d,
            PingApp::new(AppName::new("echo"), QosSpec::reliable(), 10, 64),
        );
        let mut net = b.build();
        net.run_until_assembled(Dur::from_secs(20), Dur::from_millis(100));
        net.run_for(Dur::from_secs(5));
        net.node(h1).app::<PingApp>(ping).rtts.clone()
    };
    let a = run_rina(5);
    let b = run_rina(5);
    assert_eq!(a, b, "same seed, same RTT series, bit for bit");
    let c = run_rina(6);
    assert_ne!(a, c, "different seed, different series");
}

/// The umbrella crate re-exports every component.
#[test]
fn umbrella_reexports() {
    let _ = netipc::sim::Sim::new(0);
    let _ = netipc::wire::CdapMsg::request(
        netipc::wire::OpCode::Read,
        1,
        "c",
        "/x",
        netipc::rina::prelude::Bytes::new(),
    );
    let _ = netipc::efcp::ConnParams::reliable();
    let _ = netipc::rib::Rib::new(1);
    let _ = netipc::inet::IpAddr::new(10, 0, 0, 1);
}

/// The repository documents every deliverable.
#[test]
fn documentation_present() {
    for f in ["README.md", "DESIGN.md", "EXPERIMENTS.md"] {
        let p = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(f);
        let s = std::fs::read_to_string(&p).unwrap_or_default();
        assert!(s.len() > 1000, "{f} exists and is substantial");
    }
}
