//! Workspace-level integration: both stacks drive the same simulator
//! substrate, deterministically.

use netipc::rina::apps::PingApp;
use netipc::rina::prelude::*;
use netipc::rina::scenario::{Topology, Workload};

/// The two stacks share one substrate: a RINA internetwork and an inet
/// internetwork can run side by side in one process (separate sims),
/// both fully deterministic.
#[test]
fn determinism_across_stacks() {
    let run_rina = |seed| {
        let mut b = NetBuilder::new(seed);
        let fab = Topology::line(2)
            .with_link(LinkCfg::wired().with_loss(LossModel::Bernoulli(0.05)))
            .materialize(&mut b);
        let cs = Workload::client_server(&mut b, fab.dif, &[fab.node(0)], fab.node(1), 10, 64);
        let mut net = b.build();
        net.run_until_assembled(Dur::from_secs(20), Dur::from_millis(100));
        net.run_for(Dur::from_secs(5));
        net.app(cs.clients[0]).rtts.clone()
    };
    let a = run_rina(5);
    let b = run_rina(5);
    assert_eq!(a, b, "same seed, same RTT series, bit for bit");
    let c = run_rina(6);
    assert_ne!(a, c, "different seed, different series");
}

/// Typed handles survive crossing crate boundaries: an `AppH<PingApp>`
/// minted by the builder reads back as `&PingApp` with no turbofish.
#[test]
fn typed_handles_across_the_umbrella() {
    let mut b = NetBuilder::new(9);
    let fab = Topology::star(4).materialize(&mut b);
    let cs = Workload::client_server(&mut b, fab.dif, &fab.all(), fab.hub(), 2, 32);
    let mut net = b.build();
    net.run_until_assembled(Dur::from_secs(20), Dur::from_millis(200));
    net.run_for(Dur::from_secs(3));
    for &c in &cs.clients {
        let p: &PingApp = net.app(c);
        assert!(p.done(), "star leaves all reach the hub");
    }
}

/// The umbrella crate re-exports every component.
#[test]
fn umbrella_reexports() {
    let _ = netipc::sim::Sim::new(0);
    let _ = netipc::wire::CdapMsg::request(
        netipc::wire::OpCode::Read,
        1,
        "c",
        "/x",
        netipc::rina::prelude::Bytes::new(),
    );
    let _ = netipc::efcp::ConnParams::reliable();
    let _ = netipc::rib::Rib::new(1);
    let _ = netipc::inet::IpAddr::new(10, 0, 0, 1);
}

/// The repository documents every deliverable.
#[test]
fn documentation_present() {
    for f in ["README.md", "DESIGN.md", "EXPERIMENTS.md"] {
        let p = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(f);
        let s = std::fs::read_to_string(&p).unwrap_or_default();
        assert!(s.len() > 1000, "{f} exists and is substantial");
    }
}
