//! The paper's claim 3: "This repeating structure scales indefinitely."
//! Four ranks of the *same* layer, each riding flows of the one below:
//! shims → metro DIFs → a national DIF → the internet DIF. Nothing in the
//! code distinguishes ranks; only the builder's wiring does.

use netipc::rina::apps::{EchoApp, PingApp};
use netipc::rina::prelude::*;

#[test]
fn four_rank_stack_assembles_and_carries_flows() {
    let mut b = NetBuilder::new(77);
    // Chain: h1 - m1 - m2 - m3 - m4 - h2
    // m1,m2 form metro-west; m3,m4 form metro-east.
    // national spans m2,m3 over... physical m2-m3 link.
    // internet spans h1,m1,m4,h2 (+ m2,m3) with adjacencies over the
    // metros and the national DIF.
    let h1 = b.node("h1");
    let m1 = b.node("m1");
    let m2 = b.node("m2");
    let m3 = b.node("m3");
    let m4 = b.node("m4");
    let h2 = b.node("h2");
    let l_h1 = b.link(h1, m1, LinkCfg::wired());
    let l_w = b.link(m1, m2, LinkCfg::wired());
    let l_mid = b.link(m2, m3, LinkCfg::wired());
    let l_e = b.link(m3, m4, LinkCfg::wired());
    let l_h2 = b.link(m4, h2, LinkCfg::wired());

    // Rank 1: metro DIFs over their own links.
    let west = b.dif(DifConfig::new("metro-west"));
    b.join(west, m1);
    b.join(west, m2);
    b.adjacency_over_link(west, m1, m2, l_w);
    let east = b.dif(DifConfig::new("metro-east"));
    b.join(east, m3);
    b.join(east, m4);
    b.adjacency_over_link(east, m3, m4, l_e);

    // Rank 2: the national DIF rides the metros *and* the middle link.
    let national = b.dif(DifConfig::new("national"));
    b.join(national, m1);
    b.join(national, m2);
    b.join(national, m3);
    b.join(national, m4);
    b.adjacency_over_dif(national, m1, m2, west, QosSpec::datagram());
    b.adjacency_over_link(national, m2, m3, l_mid);
    b.adjacency_over_dif(national, m3, m4, east, QosSpec::datagram());

    // Rank 3: the internet DIF: hosts at the edge, long-haul adjacency
    // rides the national DIF end to end (m1 ⇄ m4 in one hop up here).
    let inet = b.dif(DifConfig::new("internet"));
    b.join(inet, m1);
    b.join(inet, h1);
    b.join(inet, m4);
    b.join(inet, h2);
    b.adjacency_over_link(inet, h1, m1, l_h1);
    b.adjacency_over_dif(inet, m1, m4, national, QosSpec::datagram());
    b.adjacency_over_link(inet, m4, h2, l_h2);

    b.app(h2, AppName::new("echo"), inet, EchoApp::default());
    let ping = b.app(
        h1,
        AppName::new("ping"),
        inet,
        PingApp::new(AppName::new("echo"), QosSpec::reliable(), 5, 128),
    );

    let national_m2 = b.ipcp_of(national, m2);
    let mut net = b.build();
    net.run_until_assembled(Dur::from_secs(60), Dur::from_millis(500));
    net.run_for(Dur::from_secs(5));

    let p = net.app(ping);
    assert!(p.done(), "pings through 4 ranks: got {}", p.rtts.len());
    // The physical path is 5 hops; RTT must reflect all of them (≥10 ms),
    // even though the internet DIF sees only h1-m1-m4-h2.
    assert!(p.rtts[0] >= 0.010, "rtt {}", p.rtts[0]);
    // And the national DIF actually relayed (m2 is interior to the m1–m4
    // adjacency at internet rank).
    assert!(net.ipcp(national_m2).stats.relayed > 0, "national-rank relaying happened");
}
