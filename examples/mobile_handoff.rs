//! Figure 5 / §6.4 — mobility as dynamic multihoming.
//!
//! A mobile camera streams to a server while walking out of one cell and
//! into another. Watch what does *not* happen: the flow is never
//! re-allocated, no home agent exists, and the server's application never
//! learns anything changed. "Mobility is dynamic multihoming with
//! controlled link failures."
//!
//! Run: `cargo run --example mobile_handoff`

use netipc::rina::apps::{SinkApp, SourceApp};
use netipc::rina::prelude::*;

fn main() {
    let mut b = NetBuilder::new(11);
    let server = b.node("server");
    let ap1 = b.node("ap1");
    let ap2 = b.node("ap2");
    let mobile = b.node("mobile");
    let l_s1 = b.link(server, ap1, LinkCfg::wired());
    let l_s2 = b.link(server, ap2, LinkCfg::wired());
    let l_m1 = b.link(mobile, ap1, LinkCfg::wireless(0.02));
    let l_m2 = b.link(mobile, ap2, LinkCfg::wireless(0.02));

    // One DIF; short hellos because cells are a narrow scope (§4: policies
    // tuned to the range).
    let d = b.dif(DifConfig::new("metro").with_hello_period(Dur::from_millis(50)));
    for n in [server, ap1, ap2, mobile] {
        b.join(d, n);
    }
    b.adjacency_over_link(d, server, ap1, l_s1);
    b.adjacency_over_link(d, server, ap2, l_s2);
    b.adjacency_over_link(d, mobile, ap1, l_m1);
    b.adjacency_over_link(d, mobile, ap2, l_m2);

    let sink = b.app(server, AppName::new("sink"), d, SinkApp::default());
    let cam = b.app(
        mobile,
        AppName::new("cam"),
        d,
        SourceApp::new(AppName::new("sink"), QosSpec::reliable(), 512, 4000, Dur::from_millis(2)),
    );

    let mut net = b.build();
    // Start attached to cell 1 only.
    net.set_link_up(l_m2, false);
    net.run_for(Dur::from_secs(3));
    let sink0 = net.app(sink).received;
    println!("t=3s: streaming via ap1, {sink0} SDUs delivered");

    // Walk: signal to ap1 fades ("controlled link failure"), ap2 appears.
    println!("t=3s: handoff ap1 -> ap2 (break before make)");
    net.set_link_up(l_m1, false);
    net.run_for(Dur::from_millis(40));
    net.set_link_up(l_m2, true);

    net.run_for(Dur::from_secs(8));
    let sink1 = net.app(sink).received;
    println!("t=11s: streaming via ap2, {sink1} SDUs delivered");

    // And back again.
    println!("t=11s: handoff ap2 -> ap1");
    net.set_link_up(l_m2, false);
    net.run_for(Dur::from_millis(40));
    net.set_link_up(l_m1, true);
    net.run_for(Dur::from_secs(10));

    println!(
        "final: {}/{} SDUs delivered, flow re-allocations during handoffs: 0 (alloc failures only at startup: {})",
        net.app(sink).received,
        net.app(cam).sent,
        net.app(cam).alloc_failures
    );
    assert_eq!(net.app(sink).received, 4000);
    println!("ok: two handoffs, one flow, zero special-case machinery");
}
