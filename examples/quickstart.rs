//! Quickstart: the paper's Figure 1 — two hosts, one wire, one DIF.
//!
//! The application side is the whole point: the client asks for a flow to
//! `"echo"` *by name* with desired properties, gets back an opaque local
//! port id, and never sees an address. Every builder call returns a typed
//! handle — mixing them up is a compile error, and the `ping` handle
//! remembers its app type, so reading results needs no downcast.
//!
//! Run: `cargo run --example quickstart`

use netipc::rina::apps::{EchoApp, PingApp};
use netipc::rina::prelude::*;

fn main() {
    let mut b = NetBuilder::new(7);
    let h1 = b.node("h1");
    let h2 = b.node("h2");
    let wire = b.link(h1, h2, LinkCfg::wired());

    // One Distributed IPC Facility spanning both hosts.
    let dif = b.dif(DifConfig::new("net"));
    b.join(dif, h1);
    b.join(dif, h2);
    b.adjacency_over_link(dif, h1, h2, wire);

    // An echo responder, registered by name only.
    b.app(h2, AppName::new("echo"), dif, EchoApp::default());
    // A pinger that allocates a reliable flow to "echo" and measures RTTs.
    let ping = b.app(
        h1,
        AppName::new("ping"),
        dif,
        PingApp::new(AppName::new("echo"), QosSpec::reliable(), 5, 64),
    );

    let mut net = b.build();
    // The stack self-assembles: shims come up, h2 enrolls via h1 (§5.2),
    // directories flood, and only then can the flow be allocated (§5.3).
    let t = net.run_until_assembled(Dur::from_secs(10), Dur::from_millis(200));
    println!("stack assembled at t={t}");
    net.run_for(Dur::from_secs(2));

    // `ping` is an AppH<PingApp>: `net.app(ping)` is statically typed.
    let p = net.app(ping);
    println!(
        "flow allocated by name in {:.3} ms",
        p.alloc_done.unwrap().since(p.alloc_requested.unwrap()).as_secs_f64() * 1e3
    );
    for (i, rtt) in p.rtts.iter().enumerate() {
        println!("rtt[{i}] = {:.3} ms", rtt * 1e3);
    }
    assert!(p.done());
    println!("ok: {} round trips, no addresses ever seen by the apps", p.rtts.len());
}
