//! §6.1 — security as a consequence of structure.
//!
//! Three machines share a wire. The payroll DIF requires a secret to
//! join; the attacker's machine presents the wrong one. It never gets an
//! address, the DIF's addresses are never visible to it, and there is no
//! port space to scan — the facility is "impervious to attacks from
//! outside the facility". Inside an *open* DIF, the destination
//! application still vets each flow request (§5.3 access control).
//!
//! Run: `cargo run --example private_enclave`

use netipc::rina::apps::{SinkApp, SourceApp};
use netipc::rina::prelude::*;

fn main() {
    let mut b = NetBuilder::new(13);
    let hr = b.node("hr-server");
    let gw = b.node("gw");
    let intruder = b.node("intruder");
    let l1 = b.link(hr, gw, LinkCfg::wired());
    let l2 = b.link(gw, intruder, LinkCfg::wired());

    let payroll =
        b.dif(DifConfig::new("payroll").with_auth(AuthPolicy::Secret("employees-only".into())));
    b.join(payroll, gw);
    b.join(payroll, hr);
    b.join(payroll, intruder);
    // The intruder's machine tries to join with a guessed credential.
    b.join_credential(payroll, intruder, "letmein");
    b.adjacency_over_link(payroll, hr, gw, l1);
    b.adjacency_over_link(payroll, gw, intruder, l2);

    let sink = b.app(hr, AppName::new("salaries"), payroll, SinkApp::default());
    let atk = b.app(
        intruder,
        AppName::new("exfil"),
        payroll,
        SourceApp::new(AppName::new("salaries"), QosSpec::reliable(), 64, 10, Dur::ZERO),
    );

    let payroll_hr = b.ipcp_of(payroll, hr);
    let payroll_intruder = b.ipcp_of(payroll, intruder);
    let mut net = b.build();
    let t = net.sim.now() + Dur::from_secs(8);
    net.sim.run_until(t);

    let hr_ok = net.ipcp(payroll_hr).is_enrolled();
    let intruder_in = net.ipcp(payroll_intruder).is_enrolled();
    println!("hr-server enrolled:   {hr_ok}");
    println!("intruder enrolled:    {intruder_in}");
    println!(
        "intruder flow allocs: {} failures, {} SDUs delivered",
        net.app(atk).alloc_failures,
        net.app(sink).received
    );
    assert!(hr_ok && !intruder_in);
    assert_eq!(net.app(sink).received, 0);
    println!(
        "ok: no membership, no addresses, no reachable surface — by structure, not by firewall"
    );
}
