//! §6.6/§6.7 — ISPs as IPC providers, and a "boutique" private DIF.
//!
//! Two provider networks (each an ISP-scoped DIF) carry a customer-facing
//! internet DIF. On top of *that*, a content provider builds its own
//! private DIF spanning only its servers and subscribers — "a host service
//! provider creating its own DIF from the ground up" — with membership
//! gated by a secret. The paper's marketplace: layers as products.
//!
//! Run: `cargo run --example isp_marketplace`

use netipc::rina::apps::{EchoApp, PingApp, SinkApp, SourceApp};
use netipc::rina::prelude::*;

fn main() {
    let mut b = NetBuilder::new(99);
    // Two ISPs: isp-a = {ra1, ra2}, isp-b = {rb1, rb2}, peered ra2—rb1.
    let ra1 = b.node("ra1");
    let ra2 = b.node("ra2");
    let rb1 = b.node("rb1");
    let rb2 = b.node("rb2");
    // Customers: alice on isp-a, bob + the cdn server on isp-b.
    let alice = b.node("alice");
    let bob = b.node("bob");
    let cdn = b.node("cdn");

    let l_a = b.link(ra1, ra2, LinkCfg::wired());
    let l_peer = b.link(ra2, rb1, LinkCfg::wired());
    let l_b = b.link(rb1, rb2, LinkCfg::wired());
    let l_alice = b.link(alice, ra1, LinkCfg::wired());
    let l_bob = b.link(bob, rb2, LinkCfg::wired());
    let l_cdn = b.link(cdn, rb2, LinkCfg::wired());

    // Each ISP runs its own DIF over its own links — its product is IPC.
    let isp_a = b.dif(DifConfig::new("isp-a"));
    b.join(isp_a, ra1);
    b.join(isp_a, ra2);
    b.adjacency_over_link(isp_a, ra1, ra2, l_a);

    let isp_b = b.dif(DifConfig::new("isp-b"));
    b.join(isp_b, rb1);
    b.join(isp_b, rb2);
    b.adjacency_over_link(isp_b, rb1, rb2, l_b);

    // The public internet DIF: weak joining requirements (§6.7's mega-mall).
    // Its backbone adjacencies *buy transport* from the ISP DIFs.
    let inet = b.dif(DifConfig::new("internet"));
    for n in [ra1, ra2, rb1, rb2, alice, bob, cdn] {
        b.join(inet, n);
    }
    b.adjacency_over_dif(inet, ra1, ra2, isp_a, QosSpec::datagram());
    b.adjacency_over_link(inet, ra2, rb1, l_peer);
    b.adjacency_over_dif(inet, rb1, rb2, isp_b, QosSpec::datagram());
    b.adjacency_over_link(inet, alice, ra1, l_alice);
    b.adjacency_over_link(inet, bob, rb2, l_bob);
    b.adjacency_over_link(inet, cdn, rb2, l_cdn);

    // The boutique e-mall: a private DIF over the internet DIF, members
    // only by subscription (pre-shared secret), tighter hello policy.
    let club = b.dif(
        DifConfig::new("cdn-club")
            .with_auth(AuthPolicy::Secret("subscriber-token".into()))
            .with_hello_period(Dur::from_millis(250)),
    );
    b.join(club, cdn);
    b.join(club, alice);
    b.join(club, bob);
    b.adjacency_over_dif(club, alice, cdn, inet, QosSpec::reliable());
    b.adjacency_over_dif(club, bob, cdn, inet, QosSpec::reliable());

    // Services: a public echo on the internet DIF, and members-only video
    // inside the club DIF.
    b.app(cdn, AppName::new("public-echo"), inet, EchoApp::default());
    let video = b.app(cdn, AppName::new("video"), club, SinkApp::default());
    let a_ping = b.app(
        alice,
        AppName::new("alice-ping"),
        inet,
        PingApp::new(AppName::new("public-echo"), QosSpec::reliable(), 3, 64),
    );
    let b_upload = b.app(
        bob,
        AppName::new("bob-cam"),
        club,
        SourceApp::new(AppName::new("video"), QosSpec::reliable(), 800, 200, Dur::from_millis(5)),
    );

    let mut net = b.build();
    let t = net.run_until_assembled(Dur::from_secs(60), Dur::from_millis(500));
    println!("three-rank provider stack assembled at t={t}");
    net.run_for(Dur::from_secs(5));

    let p = net.app(a_ping);
    println!(
        "alice over the public internet DIF: {} RTTs, first = {:.2} ms",
        p.rtts.len(),
        p.rtts[0] * 1e3
    );
    println!(
        "bob inside cdn-club: sent {} SDUs, cdn received {}",
        net.app(b_upload).sent,
        net.app(video).received
    );
    assert!(net.app(a_ping).done() && net.app(video).received == 200);
    println!("ok: providers sold IPC at every rank; the club ran its own private network");
}
