//! A whole internetwork in four lines: a 100-node Barabási–Albert DIF
//! from the topology generators, with a client/server workload placed on
//! periphery nodes.
//!
//! This is what the typed scenario API buys: the scenarios of the paper's
//! figures took ~100 lines of hand-wiring each; a 100-node scale-free
//! facility now takes a `Topology` call and a `Workload` call.
//!
//! Run: `cargo run --release --example scale_free`

use netipc::rina::prelude::*;
use netipc::rina::scenario::{Topology, Workload};

fn main() {
    let mut b = NetBuilder::new(2026);
    let fab = Topology::barabasi_albert(100, 2, 42).with_prefix("as").materialize(&mut b);
    // The newest arrivals are the periphery; the oldest grew into hubs.
    let clients: Vec<NodeH> = (96..100).map(|i| fab.node(i)).collect();
    let cs = Workload::client_server(&mut b, fab.dif, &clients, fab.hub(), 3, 64);
    let hub_ipcp = b.ipcp_of(fab.dif, fab.hub());

    let mut net = b.build();
    let t = net.run_until_assembled(Dur::from_secs(600), Dur::from_secs(1));
    println!("100-member scale-free DIF assembled at t={t}");
    net.run_for(Dur::from_secs(10));

    for (i, &c) in cs.clients.iter().enumerate() {
        let p = net.app(c);
        println!(
            "client {i}: {} RTTs, first = {:.2} ms",
            p.rtts.len(),
            p.rtts.first().map(|r| r * 1e3).unwrap_or(f64::NAN)
        );
        assert!(p.done());
    }
    let deg = fab.degrees();
    println!(
        "hub degree = {}, hub reaches {} members via {} aggregated ranges",
        deg.iter().max().unwrap(),
        net.ipcp(hub_ipcp).fwd().len(),
        net.ipcp(hub_ipcp).fwd().aggregated_len()
    );
    println!("ok: one repeating structure, one hundred members, four lines of wiring");
}
